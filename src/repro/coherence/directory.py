"""The home-agent directory for a coherence-tracked address range.

This models the VFMem directory the FPGA implements (paper section
4.3): it maintains per-line ownership state for every line in its home
range and emits :class:`~repro.coherence.states.CoherenceEvent`s to
registered observers.  The Kona runtime subscribes to those events to
implement fetch-on-fill and cache-line dirty tracking.

The directory supports the MSI, MESI and MOESI protocol families
(paper section 2.3).  All of them give Kona what it needs — the home
agent sees every fill and, eventually, every dirty writeback — but
they differ in *when* dirty data becomes home-visible:

* **MSI** — no E state: every first write is an explicit upgrade, so
  the home even learns about intent-to-write immediately;
* **MESI** — silent E->M upgrades: the home learns about dirty data
  when the line is written back (or snooped);
* **MOESI** — the OWNED state defers writebacks past read-sharing:
  dirty data can linger in caches even longer.

The directory supports multiple caching agents (e.g. two sockets) even
though the paper's deployment has one; invariants are asserted so
property-based tests can hammer the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..common import units
from ..common.errors import CoherenceError
from ..common.stats import Counter
from ..mem.address import AddressRange
from .states import CoherenceEvent, EventKind, LineState, Protocol


Observer = Callable[[CoherenceEvent], None]
BatchObserver = Callable[[List[CoherenceEvent]], None]
#: invalidate(line) -> was_dirty; downgrade(line) -> was_dirty.
AgentCallbacks = Tuple[Callable[[int], bool], Optional[Callable[[int], bool]]]


@dataclass(slots=True)
class DirectoryEntry:
    """Directory state for one cache line."""

    state: LineState = LineState.INVALID
    owner: Optional[int] = None      # agent id when E/M/O
    sharers: Set[int] = field(default_factory=set)

    def check_invariants(self) -> None:
        """Raise if the entry violates directory invariants."""
        if self.state in (LineState.EXCLUSIVE, LineState.MODIFIED):
            if self.owner is None:
                raise CoherenceError(f"{self.state} entry without owner")
            if self.sharers - {self.owner}:
                raise CoherenceError(
                    f"{self.state} entry with extra sharers {self.sharers}")
        elif self.state is LineState.OWNED:
            if self.owner is None:
                raise CoherenceError("OWNED entry without owner")
            if self.owner not in self.sharers:
                raise CoherenceError("OWNED owner missing from sharers")
        elif self.state is LineState.SHARED:
            if not self.sharers:
                raise CoherenceError("SHARED entry with no sharers")
            if self.owner is not None:
                raise CoherenceError("SHARED entry with an owner")
        else:  # INVALID
            if self.owner is not None or self.sharers:
                raise CoherenceError("INVALID entry with residual state")


class Directory:
    """Home agent for ``home_range``; observes all fills and writebacks."""

    def __init__(self, home_range: AddressRange,
                 protocol: Protocol = Protocol.MESI) -> None:
        self.home_range = home_range
        self.protocol = protocol
        self._entries: Dict[int, DirectoryEntry] = {}
        self._observers: List[Observer] = []
        self._batch_observers: List[Optional[BatchObserver]] = []
        self.counters = Counter()
        self._agents: Dict[int, AgentCallbacks] = {}

    # -- wiring ----------------------------------------------------------------

    def subscribe(self, observer: Observer,
                  on_batch: Optional["BatchObserver"] = None) -> None:
        """Register an event observer (the Kona runtime's primitives).

        ``on_batch``, when given, receives whole event lists from the
        batched writeback drain (:meth:`put_modified_many`) instead of
        one call per event; observers without it see the same events
        individually, in order.
        """
        self._observers.append(observer)
        self._batch_observers.append(on_batch)

    def register_agent(self, agent_id: int,
                       invalidate: Callable[[int], bool],
                       downgrade: Optional[Callable[[int], bool]] = None
                       ) -> None:
        """Register a caching agent.

        ``invalidate(line_addr)`` drops the agent's copy and returns
        True if it was dirty.  ``downgrade(line_addr)`` (MOESI) demotes
        a dirty copy to OWNED and returns True if it was dirty; agents
        that never share dirty data may omit it.
        """
        self._agents[agent_id] = (invalidate, downgrade)

    def _emit(self, event: CoherenceEvent) -> None:
        for observer in self._observers:
            observer(event)

    def _emit_batch(self, events: List[CoherenceEvent]) -> None:
        for observer, on_batch in zip(self._observers,
                                      self._batch_observers):
            if on_batch is not None:
                on_batch(events)
            else:
                for event in events:
                    observer(event)

    def _entry(self, line_addr: int) -> DirectoryEntry:
        self._check_home(line_addr)
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[line_addr] = entry
        return entry

    def _check_home(self, line_addr: int) -> None:
        if line_addr not in self.home_range:
            raise CoherenceError(
                f"line {line_addr:#x} is not homed at this directory")
        if line_addr % units.CACHE_LINE:
            raise CoherenceError(f"{line_addr:#x} is not line aligned")

    # -- protocol transactions ---------------------------------------------------

    def get_shared(self, line_addr: int, agent_id: int) -> LineState:
        """GetS: agent read-misses on a line homed here.

        Returns the state granted to the requester (EXCLUSIVE only when
        it is the sole holder and the protocol has an E state).
        """
        entry = self._entry(line_addr)
        self.counters.add("get_s")
        if entry.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
            self._share_dirty_owner(line_addr, entry)
        if entry.state is LineState.INVALID:
            if self.protocol.has_exclusive:
                entry.state = LineState.EXCLUSIVE
                entry.owner = agent_id
                entry.sharers = {agent_id}
                granted = LineState.EXCLUSIVE
            else:
                entry.state = LineState.SHARED
                entry.owner = None
                entry.sharers = {agent_id}
                granted = LineState.SHARED
        elif entry.state is LineState.OWNED:
            entry.sharers.add(agent_id)   # owner forwards the data
            granted = LineState.SHARED
        else:
            entry.state = LineState.SHARED
            entry.owner = None
            entry.sharers.add(agent_id)
            granted = LineState.SHARED
        entry.check_invariants()
        self._emit(CoherenceEvent(EventKind.FILL, line_addr, is_write=False))
        return granted

    def _share_dirty_owner(self, line_addr: int,
                           entry: DirectoryEntry) -> None:
        """Another agent wants to read a line someone holds E/M.

        The owner keeps a copy and supplies the data.  Under MOESI a
        dirty owner stays dirty in OWNED (no home writeback yet); under
        MSI/MESI a dirty copy is written back to the home (a tracked
        writeback) and everyone degrades to SHARED.
        """
        owner = entry.owner
        if owner is None:
            raise CoherenceError("E/M entry without owner on GetS")
        _, downgrade = self._agents.get(owner, (None, None))
        if downgrade is not None:
            was_dirty = downgrade(line_addr)
        else:
            # No callback: trust the directory's own state (silent E->M
            # upgrades are then conservatively treated as clean).
            was_dirty = entry.state is LineState.MODIFIED
        if was_dirty and self.protocol.has_owned:
            entry.state = LineState.OWNED
            entry.sharers = {owner}
            self.counters.add("owned_transitions")
            return
        if was_dirty:
            self._emit(CoherenceEvent(EventKind.DIRTY_WRITEBACK, line_addr,
                                      is_write=True))
            self.counters.add("share_writebacks")
        entry.state = LineState.SHARED
        entry.sharers = {owner}
        entry.owner = None

    def get_modified(self, line_addr: int, agent_id: int) -> None:
        """GetM: agent write-misses (or upgrades) on a line homed here."""
        entry = self._entry(line_addr)
        self.counters.add("get_m")
        was_resident = agent_id in entry.sharers or entry.owner == agent_id
        # Everyone else loses their copy.  A dirty copy (M/O owner)
        # moves cache-to-cache; ownership transfers without a home
        # writeback — the new owner will write it back eventually.
        holders = set(entry.sharers)
        if entry.owner is not None:
            holders.add(entry.owner)
        for other in sorted(holders - {agent_id}):
            self._invalidate_agent(other, line_addr)
        entry.state = LineState.MODIFIED
        entry.owner = agent_id
        entry.sharers = {agent_id}
        entry.check_invariants()
        if was_resident:
            self._emit(CoherenceEvent(EventKind.UPGRADE, line_addr,
                                      is_write=True))
        else:
            self._emit(CoherenceEvent(EventKind.FILL, line_addr,
                                      is_write=True))

    def put_modified(self, line_addr: int, agent_id: int) -> None:
        """PutM/PutO: agent evicts a dirty line; data reaches the home.

        This is the event stream Kona's Dirty Data Tracker feeds on.
        """
        self.counters.add("put_m")
        self._apply_put_modified(line_addr, agent_id)
        self._emit(CoherenceEvent(EventKind.DIRTY_WRITEBACK, line_addr,
                                  is_write=True))

    def put_modified_many(self, line_addrs: Sequence[int],
                          agent_id: int) -> None:
        """Batched PutM drain: many dirty evictions, one notification.

        Per-line directory transitions are identical to
        :meth:`put_modified`; the resulting DIRTY_WRITEBACK events go
        out as one list to batch-aware observers (the memory agent's
        bulk bitmap marking) and one at a time, in order, to everyone
        else.  Used by cache flush paths that retire many dirty lines
        at once.
        """
        if not line_addrs:
            return
        for line_addr in line_addrs:
            self._apply_put_modified(line_addr, agent_id)
        self.counters.add("put_m", len(line_addrs))
        self._emit_batch([CoherenceEvent(EventKind.DIRTY_WRITEBACK, addr,
                                         is_write=True)
                          for addr in line_addrs])

    def _apply_put_modified(self, line_addr: int, agent_id: int) -> None:
        entry = self._entry(line_addr)
        # EXCLUSIVE is legal here: MESI/MOESI let the owner upgrade
        # E->M silently, so the directory first learns of the
        # modification when the dirty line comes back.
        if (entry.state not in (LineState.MODIFIED, LineState.EXCLUSIVE,
                                LineState.OWNED)
                or entry.owner != agent_id):
            raise CoherenceError(
                f"PutM from agent {agent_id} for line {line_addr:#x} "
                f"in state {entry.state} owned by {entry.owner}")
        if entry.state is LineState.OWNED:
            # Other sharers keep clean copies; the home is now current.
            entry.sharers.discard(agent_id)
            entry.owner = None
            entry.state = (LineState.SHARED if entry.sharers
                           else LineState.INVALID)
        else:
            entry.state = LineState.INVALID
            entry.owner = None
            entry.sharers = set()
        entry.check_invariants()

    def put_clean(self, line_addr: int, agent_id: int) -> None:
        """PutE/PutS: agent drops a clean line (no data transfer)."""
        entry = self._entry(line_addr)
        self.counters.add("put_clean")
        entry.sharers.discard(agent_id)
        if entry.owner == agent_id:
            # A clean owner (E) dropped its copy; O copies are dirty
            # and must leave through put_modified instead.
            entry.owner = None
            entry.state = (LineState.SHARED if entry.sharers
                           else LineState.INVALID)
        elif entry.owner is None:
            entry.state = (LineState.SHARED if entry.sharers
                           else LineState.INVALID)
        # else: another agent still owns the line; its state stands.
        entry.check_invariants()

    def snoop(self, line_addr: int) -> bool:
        """Pull the latest copy of a (possibly dirty) line from caches.

        Kona's eviction path snoops lines it is about to write out, in
        case the CPU has a newer copy (paper section 4.4).  Returns
        True if a dirty copy was recalled.
        """
        entry = self._entries.get(line_addr)
        self.counters.add("snoops")
        if entry is None or entry.state in (LineState.INVALID,
                                            LineState.SHARED):
            # Shared copies are clean by construction; nothing to pull.
            return False
        # E lines may have been silently upgraded to M, and O lines are
        # dirty by definition, so the snoop must go out and ask.  The
        # agent's invalidation callback reports whether its copy was
        # dirty.
        owner = entry.owner
        if owner is None:
            raise CoherenceError("E/M/O entry without owner during snoop")
        invalidate, _ = self._agents.get(owner, (None, None))
        was_dirty = (entry.state.dirty if invalidate is None
                     else invalidate(line_addr))
        entry.sharers.discard(owner)
        entry.owner = None
        entry.state = (LineState.SHARED if entry.sharers
                       else LineState.INVALID)
        entry.check_invariants()
        if was_dirty:
            self._emit(CoherenceEvent(EventKind.SNOOPED, line_addr,
                                      is_write=True))
        return bool(was_dirty)

    def snoop_page(self, page_addr: int, page_size: int) -> int:
        """Bulk :meth:`snoop` of every line in one page.

        The eviction drain snoops whole pages (64 lines for a 4 KB
        page), and almost all of those lines are untracked or merely
        SHARED: the per-line transitions are identical to
        :meth:`snoop`, but the untracked-line fast path skips the
        counter update, event construction and invariant check that
        dominate the scalar loop.  Returns the number of dirty copies
        recalled.
        """
        entries = self._entries
        agents = self._agents
        invalid = LineState.INVALID
        shared = LineState.SHARED
        self.counters.add("snoops", page_size // units.CACHE_LINE)
        dirty = 0
        for line_addr in range(page_addr, page_addr + page_size,
                               units.CACHE_LINE):
            entry = entries.get(line_addr)
            if entry is None or entry.state is invalid \
                    or entry.state is shared:
                continue
            owner = entry.owner
            if owner is None:
                raise CoherenceError(
                    "E/M/O entry without owner during snoop")
            invalidate, _ = agents.get(owner, (None, None))
            was_dirty = (entry.state.dirty if invalidate is None
                         else invalidate(line_addr))
            entry.sharers.discard(owner)
            entry.owner = None
            entry.state = shared if entry.sharers else invalid
            entry.check_invariants()
            if was_dirty:
                dirty += 1
                self._emit(CoherenceEvent(EventKind.SNOOPED, line_addr,
                                          is_write=True))
        return dirty

    # -- coalesced (page-run) transactions ----------------------------------------

    def acquire_page_run(self, page_addr: int, n_reads: int, n_writes: int,
                         first_is_write: bool, agent_id: int,
                         lines: Sequence[int], writes: Sequence[bool],
                         page_size: int = units.PAGE_4K
                         ) -> Tuple[List[LineState], int]:
        """One directory transaction for a page run of misses.

        A *page run* is a maximal slice of a (page, seq)-sorted miss
        stream whose lines share one page: ``lines``/``writes`` list
        the run's line addresses and write-intent in original ``seq``
        order, and the ``(page_addr, n_reads, n_writes,
        first_is_write)`` header summarizes the transaction the caller
        compiled.  Per line the state transition, counter increment
        and invalidation fan-out are exactly what the per-event
        :meth:`get_shared`/:meth:`get_modified` pair would produce,
        with one deliberate difference: **no FILL/UPGRADE events are
        emitted** — the coalesced engine serves its fills inline, so
        emitting here would double-serve them.  Writeback side effects
        that carry tracking semantics (a dirty owner degraded by a
        read, i.e. ``_share_dirty_owner``) still emit their
        DIRTY_WRITEBACK events.

        Returns ``(grants, invalidations)``: the state granted per
        line in ``seq`` order (the same grant sequence — and hence the
        same downstream fill/stall sequence — as the per-event loop)
        and the number of other-agent copies invalidated.
        """
        self._check_home(page_addr)
        if page_addr % page_size:
            raise CoherenceError(f"{page_addr:#x} is not page aligned")
        if len(lines) != len(writes):
            raise CoherenceError("lines and writes must have equal length")
        if not lines:
            return [], 0
        nw = sum(1 for w in writes if w)
        if nw != n_writes or len(lines) - nw != n_reads:
            raise CoherenceError(
                f"page-run header says {n_reads}r/{n_writes}w, lines carry "
                f"{len(lines) - nw}r/{nw}w")
        if bool(writes[0]) != bool(first_is_write):
            raise CoherenceError("first_is_write disagrees with writes[0]")
        hi = page_addr + page_size
        for line in lines:
            if not page_addr <= line < hi:
                raise CoherenceError(
                    f"line {line:#x} outside page run at {page_addr:#x}")
            if line % units.CACHE_LINE:
                raise CoherenceError(f"{line:#x} is not line aligned")
        grants: List[LineState] = []
        invalidations = 0
        for line, is_write in zip(lines, writes):
            granted, inval = self._acquire_line(line, is_write, agent_id)
            grants.append(granted)
            invalidations += inval
        return grants, invalidations

    def acquire_page_runs(self, lines: Sequence[int],
                          writes: Sequence[bool], agent_id: int) -> int:
        """Compiled batch of :meth:`acquire_page_run` transactions.

        ``lines``/``writes`` are the distinct missed lines of one
        replay segment in (page, seq)-sorted order, so each
        page-contiguous slice is one page run.  The per-line
        transitions are identical to one :meth:`acquire_page_run` call
        per run (same no-FILL contract); ``get_s``/``get_m`` counter
        totals are charged once at the end, which is total-equivalent
        because nothing observes the directory between the runs of one
        segment commit.  The all-INVALID single-holder case — the only
        shape the coalesced engine submits, since it bails out of
        deferral on any directory residue — is resolved closed-form;
        residue falls through to the generic per-line transition.
        Returns the number of other-agent invalidations.
        """
        entries = self._entries
        ent_get = entries.get
        inv = LineState.INVALID
        st_m = LineState.MODIFIED
        st_read = (LineState.EXCLUSIVE if self.protocol.has_exclusive
                   else LineState.SHARED)
        read_owner = agent_id if st_read is LineState.EXCLUSIVE else None
        make_entry = DirectoryEntry
        n_s = n_m = 0
        invalidations = 0
        for line, is_write in zip(lines, writes):
            entry = ent_get(line)
            if entry is not None and entry.state is not inv:
                _, k = self._acquire_line(line, is_write, agent_id)
                invalidations += k
                continue
            if is_write:
                n_m += 1
                if entry is None:
                    entries[line] = make_entry(st_m, agent_id, {agent_id})
                else:
                    entry.state = st_m
                    entry.owner = agent_id
                    entry.sharers.add(agent_id)
            else:
                n_s += 1
                if entry is None:
                    entries[line] = make_entry(st_read, read_owner,
                                               {agent_id})
                else:
                    entry.state = st_read
                    entry.owner = read_owner
                    entry.sharers.add(agent_id)
        if n_s:
            self.counters.add("get_s", n_s)
        if n_m:
            self.counters.add("get_m", n_m)
        return invalidations

    def _acquire_line(self, line_addr: int, is_write: bool,
                      agent_id: int) -> Tuple[LineState, int]:
        """One line of a page-run acquisition (generic path).

        State transitions, counters and invalidation fan-out mirror
        :meth:`get_modified`/:meth:`get_shared`; the FILL/UPGRADE
        emission is suppressed per the page-run contract.
        """
        entry = self._entry(line_addr)
        if is_write:
            self.counters.add("get_m")
            holders = set(entry.sharers)
            if entry.owner is not None:
                holders.add(entry.owner)
            inval = 0
            for other in sorted(holders - {agent_id}):
                self._invalidate_agent(other, line_addr)
                inval += 1
            entry.state = LineState.MODIFIED
            entry.owner = agent_id
            entry.sharers = {agent_id}
            entry.check_invariants()
            return LineState.MODIFIED, inval
        self.counters.add("get_s")
        if entry.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
            self._share_dirty_owner(line_addr, entry)
        if entry.state is LineState.INVALID:
            if self.protocol.has_exclusive:
                entry.state = LineState.EXCLUSIVE
                entry.owner = agent_id
                entry.sharers = {agent_id}
                granted = LineState.EXCLUSIVE
            else:
                entry.state = LineState.SHARED
                entry.owner = None
                entry.sharers = {agent_id}
                granted = LineState.SHARED
        elif entry.state is LineState.OWNED:
            entry.sharers.add(agent_id)
            granted = LineState.SHARED
        else:
            entry.state = LineState.SHARED
            entry.owner = None
            entry.sharers.add(agent_id)
            granted = LineState.SHARED
        entry.check_invariants()
        return granted, 0

    # -- internals -----------------------------------------------------------------

    def _invalidate_agent(self, agent_id: Optional[int],
                          line_addr: int) -> None:
        if agent_id is None:
            return
        callbacks = self._agents.get(agent_id)
        if callbacks is not None:
            callbacks[0](line_addr)
        self.counters.add("invalidations")

    # -- inspection ------------------------------------------------------------------

    def state_of(self, line_addr: int) -> LineState:
        """Current directory state for a line (INVALID if never seen)."""
        entry = self._entries.get(line_addr)
        return entry.state if entry is not None else LineState.INVALID

    def modified_lines(self) -> List[int]:
        """Lines currently held dirty somewhere (sorted)."""
        return sorted(addr for addr, e in self._entries.items()
                      if e.state.dirty)
