"""MESI protocol states and message vocabulary.

The directory protocol modeled here is a standard MESI home-agent
protocol (Nagarajan et al., "A Primer on Memory Consistency and Cache
Coherence").  Kona needs nothing exotic from it — only that the home
agent (the FPGA's VFMem directory) sees *every* line request and *every*
dirty writeback, which any invalidation-based protocol guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class LineState(Enum):
    """Stable cache-line states in the caching agent.

    ``OWNED`` exists only under the MOESI protocol: a dirty line that
    other caches share; the owner supplies data on demand and defers
    the memory writeback.
    """

    INVALID = auto()
    SHARED = auto()
    EXCLUSIVE = auto()
    OWNED = auto()
    MODIFIED = auto()

    @property
    def readable(self) -> bool:
        """Whether a read hits in this state."""
        return self is not LineState.INVALID

    @property
    def writable(self) -> bool:
        """Whether a write hits without a coherence transaction."""
        return self in (LineState.EXCLUSIVE, LineState.MODIFIED)

    @property
    def dirty(self) -> bool:
        """Whether the cached copy differs from memory."""
        return self in (LineState.OWNED, LineState.MODIFIED)


class Protocol(Enum):
    """Invalidation-based protocol families the substrate supports.

    All of them guarantee what Kona needs — the home agent observes
    every fill and eventually every dirty writeback — but they differ
    in *when*: MSI upgrades are always visible (no silent E->M), while
    MOESI defers dirty writebacks through the OWNED state.
    """

    MSI = "msi"
    MESI = "mesi"
    MOESI = "moesi"

    @property
    def has_exclusive(self) -> bool:
        """Whether a sole reader fills in E (silent-upgrade capable)."""
        return self is not Protocol.MSI

    @property
    def has_owned(self) -> bool:
        """Whether dirty sharing defers the home writeback."""
        return self is Protocol.MOESI


class MessageType(Enum):
    """Coherence request/response messages between agent and directory."""

    GET_S = auto()      # read miss: request shared copy
    GET_M = auto()      # write miss/upgrade: request exclusive ownership
    PUT_M = auto()      # eviction of a modified line: dirty writeback
    PUT_E = auto()      # eviction of a clean exclusive line (silent-able)
    INV = auto()        # directory -> agent invalidation
    SNOOP = auto()      # directory -> agent: forward current data
    DATA = auto()       # data response
    ACK = auto()


@dataclass(frozen=True)
class CoherenceMessage:
    """One protocol message concerning a single cache line."""

    mtype: MessageType
    line_addr: int          # byte address of the line's first byte
    agent_id: int = 0       # requesting/target caching agent


class EventKind(Enum):
    """Directory-observable events — the raw material of Kona's primitives.

    * ``FILL`` — the directory served a line to a CPU cache.  This is the
      trigger for the ``cache-remote-data`` primitive: if the line's page
      is not in FMem, fetch it from the memory node.
    * ``DIRTY_WRITEBACK`` — a modified line left the CPU caches and
      reached the directory.  This is the ``track-local-data`` primitive:
      set the line's bit in the dirty bitmap.
    * ``UPGRADE`` — a shared line was upgraded to modified; the directory
      learns the line *will* be dirtied (useful for eager policies).
    * ``SNOOPED`` — the directory pulled a modified line out of the CPU
      cache (eviction path needs latest data, paper section 4.4).
    """

    FILL = auto()
    DIRTY_WRITEBACK = auto()
    UPGRADE = auto()
    SNOOPED = auto()


@dataclass(frozen=True)
class CoherenceEvent:
    """An event the directory exposes to observers (the Kona runtime)."""

    kind: EventKind
    line_addr: int
    is_write: bool = False
