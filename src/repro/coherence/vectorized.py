"""An ndarray mirror of :class:`~repro.coherence.agent.CoherentCache`.

The batched run_trace engine (:mod:`repro.kona.engine`) needs to
classify hundreds of accesses against the CPU coherent cache in one
numpy pass.  The ordered-dict cache cannot do that, so this module
keeps the same state — tags, MESI states, LRU order — in flat arrays:

* ``tags[set, way]``  — line tag (``line_addr // 64``), ``-1`` when empty;
* ``state[set, way]`` — small-int MESI code (same order as
  :class:`~repro.coherence.states.LineState`);
* ``age[set, way]``   — a strictly increasing access timestamp.  The
  ordered dict's "pop victim = first inserted key, hit = move to back"
  discipline is exactly "victim = argmin(age), hit = age := now", so
  the two representations are interconvertible and bit-identical.

The dict cache stays the runtime's resident representation (scalar
``access``/chaos/read/write paths keep dict speed); the engine imports
its state with :meth:`VectorizedCoherentCache.from_scalar`, registers
this cache's coherence callbacks for the duration of the batch, and
exports the final state back with :meth:`export_to`.

Directory-initiated invalidations and downgrades land *during* a
batch (FMem page evictions snoop every line of the victim page).  The
cache therefore records every state mutation in a log the engine
drains after each directory interaction, so the engine can patch its
speculative hit classification instead of reclassifying.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..common import units
from ..common.errors import CoherenceError
from ..common.stats import Counter
from ..coherence.agent import CoherentCache, DirectoryResolver
from ..coherence.directory import Directory
from ..mem.address import is_power_of_two
from .states import LineState, Protocol

#: Empty-slot sentinel in the tag array (real tags are non-negative).
_EMPTY = -1

#: Small-int codes for the state array.
INVALID, SHARED, EXCLUSIVE, OWNED, MODIFIED = range(5)

_CODE_OF = {LineState.INVALID: INVALID, LineState.SHARED: SHARED,
            LineState.EXCLUSIVE: EXCLUSIVE, LineState.OWNED: OWNED,
            LineState.MODIFIED: MODIFIED}
_STATE_OF = [LineState.INVALID, LineState.SHARED, LineState.EXCLUSIVE,
             LineState.OWNED, LineState.MODIFIED]

#: Lookup tables indexed by state code.
_WRITABLE = np.array([False, False, True, False, True])
_DIRTY = np.array([False, False, False, True, True])

#: Mutation-log kinds (see :meth:`VectorizedCoherentCache.take_mutations`).
INVALIDATED = 0
DOWNGRADED = 1


class VectorizedCoherentCache:
    """Array-backed coherent cache, state-equivalent to the dict cache."""

    def __init__(self, agent_id: int, resolver: DirectoryResolver,
                 capacity: int = 8 * units.MB, ways: int = 16,
                 protocol: Protocol = Protocol.MESI,
                 counters: Optional[Counter] = None) -> None:
        if capacity <= 0 or ways <= 0 or capacity % (units.CACHE_LINE * ways):
            raise CoherenceError(
                f"bad geometry capacity={capacity} ways={ways}")
        self.num_sets = capacity // (units.CACHE_LINE * ways)
        if not is_power_of_two(self.num_sets):
            raise CoherenceError(f"sets {self.num_sets} not a power of two")
        self.agent_id = agent_id
        self.ways = ways
        self.protocol = protocol
        self._resolver = resolver
        self._set_mask = self.num_sets - 1
        self._tags = np.full((self.num_sets, ways), _EMPTY, dtype=np.int64)
        self._state = np.zeros((self.num_sets, ways), dtype=np.uint8)
        self._age = np.zeros((self.num_sets, ways), dtype=np.int64)
        # Flat views share memory with the 2-D arrays; scalar reads and
        # writes through them skip the tuple-index path.
        self._tags_f = self._tags.reshape(-1)
        self._state_f = self._state.reshape(-1)
        self._age_f = self._age.reshape(-1)
        # tag -> flat slot index; the replay path (misses, upgrades,
        # snoop callbacks) resolves residency in one dict lookup
        # instead of a numpy row scan.
        self._tag_map: Dict[int, int] = {}
        # Per-set resident counts (empty-way fast path).
        self._counts = [0] * self.num_sets
        self._clock = 0
        self.counters = counters if counters is not None else Counter()
        self.record_mutations = False
        self._mutations: List[Tuple[int, int]] = []   # (kind, tag)
        # classify() scratch (grown on demand): the (m, ways) gather and
        # compare dominate its cost, and reallocating multi-megabyte
        # temporaries per chunk is most of that.
        self._cls_rows = np.empty((0, ways), dtype=np.int64)
        self._cls_hits = np.empty((0, ways), dtype=bool)

    # -- dict-cache interop ------------------------------------------------------

    @classmethod
    def from_scalar(cls, cache: CoherentCache) -> "VectorizedCoherentCache":
        """Snapshot a dict cache into arrays (shares its counter bag)."""
        vec = cls(agent_id=cache.agent_id, resolver=cache._resolver,
                  capacity=cache.num_sets * cache.ways * units.CACHE_LINE,
                  ways=cache.ways, protocol=cache.protocol,
                  counters=cache.counters)
        # Collect the resident lines first and land them with three
        # bulk assignments — per-line scalar stores into the 2-D arrays
        # dominate snapshot time on a warm cache.  Append order is the
        # age order (one global clock), so ages are just 1..clock (only
        # relative age *within* a set matters, and each set's lines
        # stay contiguous and in dict — i.e. LRU — order).  The inner
        # work runs at C speed: dict-view extends, a mapped state→code
        # translation, and one vectorized address→tag shift.
        counts = vec._counts
        ways = cache.ways
        code_of = _CODE_OF.__getitem__
        flats: List[int] = []
        addrs: List[int] = []
        codes: List[int] = []
        for sidx, lines in enumerate(cache._sets):
            if not lines:
                continue
            n = len(lines)
            counts[sidx] = n
            base = sidx * ways
            flats.extend(range(base, base + n))
            addrs.extend(lines.keys())
            codes.extend(map(code_of, lines.values()))
        clock = len(flats)
        if clock:
            f = np.array(flats, dtype=np.intp)
            tags = np.array(addrs, dtype=np.int64) // units.CACHE_LINE
            vec._tags_f[f] = tags
            vec._state_f[f] = codes
            vec._age_f[f] = np.arange(1, clock + 1)
            vec._tag_map.update(zip(tags.tolist(), flats))
        vec._clock = clock
        return vec

    def export_to(self, cache: CoherentCache) -> None:
        """Rebuild the dict cache's per-set ordered dicts from arrays.

        Dict insertion order is LRU order, i.e. ascending age.  Ages
        are globally unique, so one global sort by age and an in-order
        insert reproduces every set's LRU order at O(resident lines)
        cost — the tag map gives the resident slots without scanning
        the (mostly empty, capacity-sized) arrays.
        """
        if (cache.num_sets, cache.ways) != (self.num_sets, self.ways):
            raise CoherenceError("geometry mismatch on export")
        sets: List[Dict[int, LineState]] = [{} for _ in range(self.num_sets)]
        cache._sets = sets
        if self._tag_map:
            idx = np.fromiter(self._tag_map.values(), dtype=np.int64,
                              count=len(self._tag_map))
            idx = idx[np.argsort(self._age_f[idx])]
            for sidx, tag, code in zip((idx // self.ways).tolist(),
                                       self._tags_f[idx].tolist(),
                                       self._state_f[idx].tolist()):
                sets[sidx][tag * units.CACHE_LINE] = _STATE_OF[code]

    # -- plumbing ----------------------------------------------------------------

    def attach(self, directory: Directory) -> None:
        """Register this cache's coherence callbacks with a directory."""
        directory.register_agent(self.agent_id, self._handle_invalidation,
                                 self._handle_downgrade)

    def take_mutations(self) -> List[Tuple[int, int]]:
        """Drain the (kind, tag) log of directory-initiated mutations."""
        muts = self._mutations
        self._mutations = []
        return muts

    def _handle_invalidation(self, line_addr: int) -> bool:
        tag = line_addr // units.CACHE_LINE
        self.counters.add("external_invalidations")
        flat = self._tag_map.pop(tag, -1)
        if flat < 0:
            return False
        dirty = int(self._state_f[flat]) >= OWNED
        self._tags_f[flat] = _EMPTY
        self._state_f[flat] = INVALID
        self._age_f[flat] = 0
        self._counts[flat // self.ways] -= 1
        if self.record_mutations:
            self._mutations.append((INVALIDATED, tag))
        return dirty

    def _handle_downgrade(self, line_addr: int) -> bool:
        tag = line_addr // units.CACHE_LINE
        flat = self._tag_map.get(tag, -1)
        if flat < 0:
            return False
        self.counters.add("downgrades")
        was_dirty = int(self._state_f[flat]) >= OWNED
        if was_dirty and self.protocol.has_owned:
            self._state_f[flat] = OWNED
        else:
            self._state_f[flat] = SHARED
        if self.record_mutations:
            self._mutations.append((DOWNGRADED, tag))
        return was_dirty

    # -- batched classification --------------------------------------------------

    def classify(self, tags: np.ndarray, writes: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Speculative hit classification for a span of accesses.

        Returns ``(pure_hit, resident, flat)`` against the *current*
        state: an access is a pure hit when its line is resident and,
        for writes, writable; ``flat`` is the line's flat slot index
        (meaningful only where ``resident``).  Pure hits cannot change
        any other line's residency or writability, so a pure-hit prefix
        of the span can be applied in bulk; the first non-pure access
        must be replayed through the directory, after which the caller
        patches the masks (the engine does this) rather than
        reclassifying.
        """
        m = tags.shape[0]
        if self._cls_rows.shape[0] < m:
            self._cls_rows = np.empty((m, self.ways), dtype=np.int64)
            self._cls_hits = np.empty((m, self.ways), dtype=bool)
        rows = self._cls_rows[:m]
        hit_ways = self._cls_hits[:m]
        sidx = (tags & self._set_mask).astype(np.intp, copy=False)
        np.take(self._tags, sidx, axis=0, out=rows)
        np.equal(rows, tags[:, None], out=hit_ways)
        resident = hit_ways.any(axis=1)
        way = hit_ways.argmax(axis=1)
        flat = sidx * self.ways + way
        states = self._state_f[flat]
        pure = resident & (~writes | _WRITABLE[states])
        return pure, resident, flat

    def bulk_hits(self, flat: np.ndarray, writes: np.ndarray,
                  ages: np.ndarray) -> None:
        """Apply a run of pure hits (LRU promotion + write upgrades).

        ``flat`` holds the slot indices classify/patching resolved; the
        caller guarantees every element is a pure hit under the current
        state.  ``ages`` must be strictly increasing and larger than
        every timestamp already in the cache, so duplicate lines
        resolve to their last access by plain last-write-wins fancy
        assignment — exactly the dict cache's move-to-back discipline
        (and exactly what ``maximum.at`` would compute, minus the
        unbuffered ufunc overhead).
        """
        self._age_f[flat] = ages
        # Pure write hits are on writable (E/M) lines; E -> M is the
        # silent upgrade, M -> M is idempotent.  An all-read run makes
        # this an empty fancy assignment, which is cheaper than probing
        # with writes.any() first on the (common) runs that do write.
        self._state_f[flat[writes]] = MODIFIED
        self.counters.add("hits", int(flat.size))

    # -- replayed (non-pure) accesses --------------------------------------------

    def upgrade(self, line_addr: int, age: int) -> None:
        """Write hit on a resident, non-writable line (S/O -> M).

        Mirrors the dict cache exactly: the line is popped for the
        duration of the directory call (a snoop landing mid-upgrade
        finds it absent) and re-inserted as MODIFIED at the new age.
        """
        tag = line_addr // units.CACHE_LINE
        flat = self._tag_map.pop(tag)
        self._tags_f[flat] = _EMPTY
        directory = self._resolver(line_addr)
        if directory is not None:
            directory.get_modified(line_addr, self.agent_id)
        self._tag_map[tag] = flat
        self._tags_f[flat] = tag
        self._state_f[flat] = MODIFIED
        self._age_f[flat] = age
        self.counters.add("upgrades")

    def miss_fill(self, line_addr: int, is_write: bool,
                  age: int) -> Tuple[Optional[int], int, int]:
        """One miss: evict a victim if the set is full, then fill.

        Returns ``(victim_tag_or_None, new_state_code, flat_slot)`` so
        the engine can patch its hit masks.  Matches the dict cache's
        ordering: the victim's Put reaches the directory before the
        fill's Get, and the line is inserted only after the Get returns
        (a snoop that lands mid-fill therefore finds the line absent).
        """
        tag = line_addr // units.CACHE_LINE
        sidx = tag & self._set_mask
        self.counters.add("misses")
        base = sidx * self.ways
        victim_tag: Optional[int] = None
        if self._counts[sidx] >= self.ways:
            way = int(self._age[sidx].argmin())
            flat = base + way
            victim_tag = int(self._tags_f[flat])
            victim_state = int(self._state_f[flat])
            self._tags_f[flat] = _EMPTY
            self._state_f[flat] = INVALID
            self._age_f[flat] = 0
            del self._tag_map[victim_tag]
            # Victim out + fill in nets zero; _counts stays put (the
            # transient deficit is unobservable — snoop callbacks only
            # decrement, and nothing reads counts mid-fill).
            self.counters.add("evictions")
            victim_addr = victim_tag * units.CACHE_LINE
            victim_dir = self._resolver(victim_addr)
            if victim_dir is not None:
                if victim_state >= OWNED:   # OWNED/MODIFIED are dirty
                    victim_dir.put_modified(victim_addr, self.agent_id)
                else:
                    victim_dir.put_clean(victim_addr, self.agent_id)
        else:
            flat = base + int((self._state[sidx] == INVALID).argmax())
            self._counts[sidx] += 1
        directory = self._resolver(line_addr)
        if is_write:
            if directory is not None:
                directory.get_modified(line_addr, self.agent_id)
            code = MODIFIED
        elif directory is not None:
            code = _CODE_OF[directory.get_shared(line_addr, self.agent_id)]
        elif self.protocol.has_exclusive:
            code = EXCLUSIVE
        else:
            code = SHARED
        self._tags_f[flat] = tag
        self._state_f[flat] = code
        self._age_f[flat] = age
        self._tag_map[tag] = flat
        return victim_tag, code, flat

    # -- scalar-compatible access path -------------------------------------------

    def access(self, addr: int, is_write: bool) -> bool:
        """One access, same contract as ``CoherentCache.access``.

        Used by the differential tests to drive both representations
        through identical traffic; the engine uses the batched methods.
        """
        line_addr = addr - addr % units.CACHE_LINE
        self._clock += 1
        flat = self._tag_map.get(line_addr // units.CACHE_LINE, -1)
        if flat >= 0:
            state = int(self._state_f[flat])
            if not is_write or _WRITABLE[state]:
                if is_write:
                    self._state_f[flat] = MODIFIED
                self._age_f[flat] = self._clock
                self.counters.add("hits")
                return True
            self.upgrade(line_addr, self._clock)
            return True
        self.miss_fill(line_addr, is_write, self._clock)
        return False

    # -- inspection ---------------------------------------------------------------

    def state_of(self, addr: int) -> LineState:
        """MESI state of the line containing ``addr`` (INVALID if absent)."""
        flat = self._tag_map.get(
            (addr - addr % units.CACHE_LINE) // units.CACHE_LINE, -1)
        if flat < 0:
            return LineState.INVALID
        return _STATE_OF[int(self._state_f[flat])]

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(self._counts)
