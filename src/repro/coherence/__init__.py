"""MESI directory coherence: the hardware substrate of Kona's primitives."""

from .agent import CoherentCache, DirectoryResolver
from .directory import Directory, DirectoryEntry
from .states import (
    CoherenceEvent,
    CoherenceMessage,
    EventKind,
    LineState,
    MessageType,
    Protocol,
)

__all__ = [
    "CoherenceEvent",
    "CoherenceMessage",
    "CoherentCache",
    "Directory",
    "DirectoryEntry",
    "DirectoryResolver",
    "EventKind",
    "LineState",
    "MessageType",
    "Protocol",
]
