"""A caching agent: the CPU cache hierarchy as seen by the directory.

The agent collapses the CPU's L1/L2/L3 into one aggregate coherent
cache (geometry ~ LLC).  That is the right abstraction level for Kona:
the directory cannot see *which* level holds a line, only when lines
are requested and when modified lines come back.

For addresses outside any tracked range (CMem), the agent behaves like
an ordinary cache with no coherence traffic, mirroring the paper's
limitation that the FPGA cannot observe CMem.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..common import units
from ..common.errors import CoherenceError
from ..common.stats import Counter
from ..mem.address import align_down, is_power_of_two
from .directory import Directory
from .states import LineState, Protocol


DirectoryResolver = Callable[[int], Optional[Directory]]


class CoherentCache:
    """Set-associative cache whose lines carry MESI states."""

    def __init__(self, agent_id: int, resolver: DirectoryResolver,
                 capacity: int = 8 * units.MB, ways: int = 16,
                 protocol: Protocol = Protocol.MESI) -> None:
        if capacity <= 0 or ways <= 0 or capacity % (units.CACHE_LINE * ways):
            raise CoherenceError(
                f"bad geometry capacity={capacity} ways={ways}")
        self.num_sets = capacity // (units.CACHE_LINE * ways)
        if not is_power_of_two(self.num_sets):
            raise CoherenceError(f"sets {self.num_sets} not a power of two")
        self.agent_id = agent_id
        self.ways = ways
        self.protocol = protocol
        self._resolver = resolver
        # Per set: ordered dict line_addr -> LineState (LRU: oldest first).
        self._sets: List[Dict[int, LineState]] = [
            {} for _ in range(self.num_sets)]
        self.counters = Counter()

    # -- plumbing ---------------------------------------------------------------

    def attach(self, directory: Directory) -> None:
        """Register this agent's coherence callbacks with a directory."""
        directory.register_agent(self.agent_id, self._handle_invalidation,
                                 self._handle_downgrade)

    def _set_of(self, line_addr: int) -> Dict[int, LineState]:
        index = (line_addr // units.CACHE_LINE) & (self.num_sets - 1)
        return self._sets[index]

    def _handle_invalidation(self, line_addr: int) -> bool:
        """Directory-initiated invalidation; True if our copy was dirty."""
        lines = self._set_of(line_addr)
        state = lines.pop(line_addr, None)
        self.counters.add("external_invalidations")
        return state is not None and state.dirty

    def _handle_downgrade(self, line_addr: int) -> bool:
        """Demote our copy for a read-sharer; True if it was dirty.

        Under MOESI a dirty copy stays dirty in OWNED; under MSI/MESI
        the dirty data is written back (the directory emits the
        writeback) and our copy becomes SHARED.
        """
        lines = self._set_of(line_addr)
        state = lines.get(line_addr)
        if state is None:
            return False
        self.counters.add("downgrades")
        was_dirty = state.dirty
        if was_dirty and self.protocol.has_owned:
            lines[line_addr] = LineState.OWNED
        else:
            lines[line_addr] = LineState.SHARED
        return was_dirty

    # -- the access path -----------------------------------------------------------

    def access(self, addr: int, is_write: bool) -> bool:
        """Perform one memory access; returns True on a cache hit.

        Misses and upgrades generate the appropriate directory traffic
        for tracked addresses.
        """
        line_addr = align_down(addr, units.CACHE_LINE)
        lines = self._set_of(line_addr)
        state = lines.get(line_addr)
        directory = self._resolver(line_addr)

        if state is not None:
            if not is_write or state.writable:
                # Pure hit; promote in LRU order.
                del lines[line_addr]
                new_state = LineState.MODIFIED if is_write else state
                lines[line_addr] = new_state
                self.counters.add("hits")
                return True
            # Write to a SHARED line: upgrade.
            del lines[line_addr]
            if directory is not None:
                directory.get_modified(line_addr, self.agent_id)
            lines[line_addr] = LineState.MODIFIED
            self.counters.add("upgrades")
            return True

        # Miss: make room first so the directory sees eviction before fill.
        self.counters.add("misses")
        if len(lines) >= self.ways:
            self._evict_victim(lines)
        if is_write:
            if directory is not None:
                directory.get_modified(line_addr, self.agent_id)
            new_state = LineState.MODIFIED
        elif directory is not None:
            # The data response carries the granted state (E only for a
            # sole holder).
            new_state = directory.get_shared(line_addr, self.agent_id)
        elif self.protocol.has_exclusive:
            new_state = LineState.EXCLUSIVE
        else:
            new_state = LineState.SHARED
        lines[line_addr] = new_state
        return False

    def _evict_victim(self, lines: Dict[int, LineState]) -> None:
        victim_addr = next(iter(lines))
        victim_state = lines.pop(victim_addr)
        self.counters.add("evictions")
        directory = self._resolver(victim_addr)
        if directory is None:
            return
        if victim_state.dirty:
            directory.put_modified(victim_addr, self.agent_id)
        else:
            directory.put_clean(victim_addr, self.agent_id)

    # -- bulk operations ---------------------------------------------------------

    def flush_tracked(self) -> int:
        """Write back and drop every tracked line (barrier/teardown path).

        Clean lines are dropped immediately; dirty lines are collected
        (in flush order) and retired through the directory's batched
        writeback drain, which bulk-marks the dirty bitmap.  Ordering
        between the two is unobservable — PutClean emits no events and
        every line is retired exactly once.  Returns the number of
        modified lines written back.
        """
        pending: Dict[Directory, List[int]] = {}
        for lines in self._sets:
            for line_addr in list(lines):
                directory = self._resolver(line_addr)
                if directory is None:
                    continue
                state = lines.pop(line_addr)
                if state.dirty:
                    pending.setdefault(directory, []).append(line_addr)
                else:
                    directory.put_clean(line_addr, self.agent_id)
        written_back = 0
        for directory, dirty_lines in pending.items():
            directory.put_modified_many(dirty_lines, self.agent_id)
            written_back += len(dirty_lines)
        self.counters.add("flushes")
        return written_back

    def state_of(self, addr: int) -> LineState:
        """MESI state of the line containing ``addr`` (INVALID if absent)."""
        line_addr = align_down(addr, units.CACHE_LINE)
        return self._set_of(line_addr).get(line_addr, LineState.INVALID)

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)
