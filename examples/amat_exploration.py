#!/usr/bin/env python3
"""Explore average memory access time with KCacheSim (Figure 8).

Sweeps the local-cache size for three application profiles and prices
the same simulated miss behaviour under Kona, Kona-main, LegoOS and
Infiniswap, then sweeps the fetch block size — the experiment that led
the authors to a 4 KB fetch block with 64 B dirty tracking.

Run:  python examples/amat_exploration.py
"""

import repro.common.units as u
from repro.analysis import render_table
from repro.experiments import run_fig8_amat, run_fig8d_blocksize
from repro.experiments.fig8 import SYSTEMS, best_block


def main() -> None:
    print("Simulating AMAT under four remote-memory systems...\n")
    result = run_fig8_amat(num_ops=30_000)
    for workload in result.amat_ns:
        rows = [(pct, *(round(v, 1) for v in vals))
                for pct, *vals in result.rows(workload)]
        print(render_table(["cache %", *SYSTEMS], rows,
                           title=f"{workload}: AMAT (ns) vs local cache"))
        lego = result.improvement_at(workload, 0.25, "legoos")
        swap = result.improvement_at(workload, 0.25, "infiniswap")
        print(f"  @25% cache: Kona {lego:.1f}X better than LegoOS, "
              f"{swap:.1f}X better than Infiniswap "
              f"(paper: 1.7X / 5X)\n")

    print("Sweeping the fetch block size (Figure 8d)...\n")
    sweep = run_fig8d_blocksize(num_ops=30_000)
    blocks = sorted(next(iter(sweep.values())))
    rows = [(b, *(round(sweep[f][b], 1) for f in sorted(sweep)))
            for b in blocks]
    print(render_table(
        ["block B", *(f"cache {int(f * 100)}%" for f in sorted(sweep))],
        rows, title="redis-rand: AMAT (ns) vs fetch block size"))
    for fraction in (0.27, 0.54):
        print(f"  best block at {int(fraction * 100)}% cache: "
              f"{best_block(sweep[fraction])} B (paper: 1 KB, with 4 KB "
              f"adopted for simpler metadata)")


if __name__ == "__main__":
    main()
