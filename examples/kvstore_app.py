#!/usr/bin/env python3
"""An application on the public API: a KV store in disaggregated memory.

`repro.apps.RemoteKVStore` contains no remote-memory code — it just
mallocs, reads, and writes through the Kona runtime, and transparently
gets fault-free remote fetches, line-granularity dirty tracking, and
dirty-line-only eviction.  This example loads the store, runs a mixed
workload, and prints what the runtime observed underneath it.

Run:  python examples/kvstore_app.py
"""

import random

import repro.common.units as u
from repro.apps import RemoteKVStore
from repro.kona import KonaConfig, KonaRuntime, snapshot


def main() -> None:
    runtime = KonaRuntime(KonaConfig(
        fmem_capacity=8 * u.MB,
        vfmem_capacity=128 * u.MB,
        slab_bytes=32 * u.MB,
    ))
    store = RemoteKVStore(runtime, capacity=4096)

    rng = random.Random(7)
    print("loading 1000 keys...")
    for i in range(1000):
        store.put(f"user:{i}", f"profile-{i}".encode() * rng.randint(1, 4))

    print("running a 70/30 read/write mix...")
    for _ in range(2000):
        key = f"user:{rng.randrange(1000)}"
        if rng.random() < 0.7:
            assert store.get(key) is not None
        else:
            store.put(key, b"updated" * rng.randint(1, 8))

    s = store.stats
    print(f"\nstore: {len(store)} keys, {s.puts} puts, {s.gets} gets, "
          f"{s.probes} probes")
    print(f"memory-stall time inside the store: "
          f"{u.time_to_human(s.stall_ns)}")

    runtime.cpu_cache.flush_tracked()
    tracked = runtime.tracker
    print(f"dirty data (line-tracked): "
          f"{u.bytes_to_human(tracked.dirty_bytes_cacheline())} "
          f"vs {u.bytes_to_human(tracked.dirty_bytes_page())} at page "
          f"granularity ({tracked.amplification_vs_page():.1f}X avoided)")

    print("\nruntime telemetry (fetch section):")
    snap = snapshot(runtime)
    for key, value in snap.data["fetch"].items():
        print(f"  {key}: {value}")
    print(f"  page faults: {snap.data['faults']['page_faults']}")


if __name__ == "__main__":
    main()
