#!/usr/bin/env python3
"""Trace tooling walkthrough: record, persist, analyze, compose.

Shows the measurement side of the library — the part that stands in
for the paper's Pin instrumentation:

1. generate a workload trace and persist it (`save_trace`);
2. reload it and regenerate its Table 2 row;
3. compose a multi-tenant trace (`interleave`) and show per-tenant
   statistics survive co-location.

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

import repro.common.units as u
from repro.analysis import TABLE2, render_table
from repro.tools import analyze, lines_per_page_cdf
from repro.workloads import (
    interleave,
    load_trace,
    per_tenant_slice,
    redis_rand,
    save_trace,
    voltdb_tpcc,
)


def main() -> None:
    workload = redis_rand()
    trace = workload.generate(windows=5, seed=21)
    print(f"generated {workload.name}: {len(trace):,} accesses, "
          f"{trace.num_windows} windows, "
          f"{u.bytes_to_human(trace.memory_bytes)} heap")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "redis-rand.npz"
        save_trace(trace, path)
        print(f"persisted to {path.name} "
              f"({u.bytes_to_human(path.stat().st_size)} compressed, "
              f"{u.bytes_to_human(trace.data.nbytes)} raw)")
        trace = load_trace(path)

    report = analyze(trace)
    amp = report.mean_amplification(skip_first=workload.startup_windows)
    ref = TABLE2[workload.name]
    print(render_table(
        ["granularity", "measured", "paper"],
        [("4 KB", round(amp["4k"], 1), ref.amp_4k),
         ("2 MB", round(amp["2m"], 0), ref.amp_2m),
         ("64 B", round(amp["cl"], 2), ref.amp_cl)],
        title=f"\nTable 2 row — {workload.name}"))

    from repro.workloads.trace import Trace
    steady = Trace(trace.data[trace.windows >= workload.startup_windows],
                   trace.memory_bytes, trace.name)
    cdf = lines_per_page_cdf(steady, writes=True)
    print(f"\nspatial locality (steady state): {cdf.at(8):.0%} of written "
          f"pages touch <= 8 of their 64 lines (Figure 2)")

    print("\ncomposing a two-tenant trace (redis-rand + voltdb-tpcc)...")
    mixed, placements = interleave([redis_rand(), voltdb_tpcc()],
                                   windows=3, seed=5)
    for placement in placements:
        tenant = per_tenant_slice(mixed, placement)
        tenant_amp = analyze(tenant).mean_amplification(
            skip_first=2, skip_last=0)
        print(f"  {placement.name:12s} base={placement.base:#12x} "
              f"amp(4KB)={tenant_amp['4k']:.1f} "
              f"(paper: {TABLE2[placement.name].amp_4k})")
    print("co-location does not distort per-tenant amplification.")


if __name__ == "__main__":
    main()
