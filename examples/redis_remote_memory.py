#!/usr/bin/env python3
"""Run a Redis-like workload on Kona vs a page-based runtime.

This is the paper's intro scenario: a data-structure server whose heap
partially lives in disaggregated memory.  The Redis-Rand workload model
(calibrated against the paper's Table 2 measurements) drives both
runtimes with the identical access stream; compare the fault counts,
stall time, and the bytes shipped back to the memory nodes.

Run:  python examples/redis_remote_memory.py
"""

import numpy as np

import repro.common.units as u
from repro.baselines import kona_vm
from repro.kona import KonaConfig, KonaRuntime
from repro.tools.pintool import analyze
from repro.workloads import redis_rand


def main() -> None:
    workload = redis_rand()
    trace = workload.generate(windows=4, seed=7)
    print(f"workload: {workload.name}, "
          f"{u.bytes_to_human(workload.memory_bytes)} heap, "
          f"{len(trace):,} accesses in {trace.num_windows} windows")

    # What would page-granularity tracking amplify this to?
    report = analyze(trace)
    amp = report.mean_amplification(skip_first=workload.startup_windows)
    print(f"dirty amplification: 4KB={amp['4k']:.1f}X  "
          f"2MB={amp['2m']:.0f}X  64B={amp['cl']:.2f}X  "
          f"(paper Table 2: 31.4 / 5516 / 1.48)")

    # Execute a steady-state slice of the stream on both runtimes with
    # a 50% local cache.  Kona: coherence-tracked VFMem; Kona-VM: page
    # faults.  (The startup windows are bulk population — skip them.)
    steady = trace.data[trace.windows >= workload.startup_windows]
    slice_n = min(6000, steady.size)
    cache = workload.memory_bytes // 2

    config = KonaConfig(fmem_capacity=cache,
                        vfmem_capacity=2 * workload.memory_bytes,
                        slab_bytes=64 * u.MB)
    kona = KonaRuntime(config)
    region = kona.mmap(workload.memory_bytes)
    addrs = steady["addr"][:slice_n] + np.uint64(region.start)
    writes = steady["write"][:slice_n].copy()
    kona_report = kona.run_trace(addrs, writes)

    vm = kona_vm(cache)
    vm_report = vm.run(steady["addr"][:slice_n].copy(), writes)
    vm.flush_dirty()

    print(f"\n{'':24s}{'Kona':>14s}{'Kona-VM':>14s}")
    print(f"{'elapsed':24s}{u.time_to_human(kona_report.elapsed_ns):>14s}"
          f"{u.time_to_human(vm_report.elapsed_ns):>14s}")
    print(f"{'page faults':24s}"
          f"{kona.page_table.counters['faults_missing']:>14d}"
          f"{vm.counters['pages_fetched']:>14d}")
    kona.flush()
    print(f"{'bytes written back':24s}"
          f"{kona.eviction.stats.dirty_bytes:>14,d}"
          f"{vm.bytes_written_back:>14,d}")
    speedup = vm_report.elapsed_ns / kona_report.elapsed_ns
    print(f"\nKona is {speedup:.1f}X faster on this stream and ships "
          f"{vm.bytes_written_back / max(kona.eviction.stats.dirty_bytes, 1):.0f}X "
          f"less dirty data.")


if __name__ == "__main__":
    main()
