#!/usr/bin/env python3
"""Compare eviction transfer strategies (Figure 11).

Every page of a region has N dirty cache lines; five strategies write
the dirty data to a remote host.  Goodput (useful dirty bytes per
second) is shown relative to Kona-VM's whole-page writes.

Run:  python examples/eviction_goodput.py
"""

from repro.analysis import render_table
from repro.baselines.eviction_strategies import STRATEGIES, kona_vm_4k
from repro.experiments import run_fig11, run_fig11c_breakdown


def main() -> None:
    for pattern in ("contiguous", "alternate"):
        result = run_fig11(pattern=pattern,
                           strategies=tuple(STRATEGIES))
        strategies = sorted(result.relative_goodput)
        rows = [(n, *(round(v, 2) for v in vals))
                for n, *vals in result.rows()]
        print(render_table(
            ["dirty lines", *strategies], rows,
            title=f"Goodput relative to Kona-VM 4KB writes ({pattern})"))
        print()

    print("Kona CL-log time breakdown (Figure 11c):\n")
    breakdown = run_fig11c_breakdown()
    buckets = ("bitmap", "copy", "rdma_write", "ack_wait")
    rows = [(n, *(f"{shares.get(b, 0.0):.0%}" for b in buckets),
             round(shares["total_ms"], 1))
            for n, shares in sorted(breakdown.items())]
    print(render_table(["dirty lines", *buckets, "total ms"], rows))
    print("\npaper: copy dominates; RDMA and bitmap ~15-20% each; "
          "ack wait is small.")


if __name__ == "__main__":
    main()
