#!/usr/bin/env python3
"""Quickstart: transparent disaggregated memory with Kona.

Builds a two-memory-node rack, allocates memory that is physically
remote, and shows the three things the paper is about:

1. the data path has **no page faults** — pages are always present in
   the fake VFMem physical space;
2. writes are tracked at **cache-line granularity** by the coherence
   directory, not at page granularity;
3. eviction ships **only the dirty lines** over RDMA.

Run:  python examples/quickstart.py
"""

import repro
import repro.common.units as u
from repro.kona import KonaConfig, KonaRuntime


def main() -> None:
    config = KonaConfig(
        fmem_capacity=16 * u.MB,     # local DRAM cache for remote data
        vfmem_capacity=256 * u.MB,   # fake physical space the FPGA exports
        slab_bytes=64 * u.MB,        # coarse allocation unit
    )
    with KonaRuntime(config, num_memory_nodes=2) as runtime:
        print("rack:", ", ".join(runtime.controller.nodes))

        # Allocation is transparent: the app calls malloc/mmap, the
        # resource manager binds remote slabs off the critical path.
        buf = runtime.mmap(64 * u.MB)
        print(f"mapped {u.bytes_to_human(buf.size)} of remote memory "
              f"at {buf.start:#x}")
        print("remote slabs bound:",
              runtime.resource_manager.counters["slabs_bound"])

        # First touch fetches from the memory node -- as a cache miss,
        # not a page fault.
        cost = runtime.read(buf.start)
        print(f"first access: {u.time_to_human(cost)} "
              f"(remote fetch, no page fault)")
        cost = runtime.read(buf.start + 2048)
        print(f"same page, other line: {u.time_to_human(cost)} (FMem hit)")
        cost = runtime.read(buf.start)
        print(f"hot access: {u.time_to_human(cost)} (CPU cache hit)")
        print("page faults taken:",
              runtime.page_table.counters["faults_missing"])

        # Dirty data is tracked per 64 B line.  Write 3 lines in one
        # page and one line in another:
        runtime.write(buf.start, 3 * u.CACHE_LINE)
        runtime.write(buf.start + 8 * u.PAGE_4K, 16)
        runtime.cpu_cache.flush_tracked()   # push writebacks to the bitmap
        tracked = runtime.tracker
        print(f"dirty (cache-line tracking): "
              f"{tracked.dirty_bytes_cacheline()} B")
        print(f"dirty (page tracking would say): "
              f"{tracked.dirty_bytes_page()} B "
              f"({tracked.amplification_vs_page():.0f}X amplification)")

        # Eviction writes only the dirty lines to the memory nodes.
        runtime.flush()
        stats = runtime.eviction.stats
        print(f"evicted {stats.pages_evicted} pages: "
              f"{stats.dirty_bytes} useful bytes on "
              f"{stats.wire_bytes} wire bytes")


if __name__ == "__main__":
    main()
