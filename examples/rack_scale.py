#!/usr/bin/env python3
"""Rack-scale scenario: several applications sharing disaggregated memory.

The paper's introduction motivates disaggregation with datacenter
memory utilization stuck around 65%: every monolithic server must be
provisioned for its own peak.  With a shared pool, applications draw
slabs on demand and the *rack*, not each server, absorbs the peaks.

This example runs three applications with different footprints against
one rack of memory nodes, prints per-node utilization, then retires one
application and shows its slabs returning to the pool.  It finishes
with a full telemetry snapshot of one runtime.

Run:  python examples/rack_scale.py
"""

import repro.common.units as u
from repro.kona import KonaConfig, KonaRuntime, build_rack, snapshot
from repro.net.fabric import Fabric


def utilization(controller) -> str:
    parts = []
    for name in controller.nodes:
        node = controller.node(name)
        total = node.pool.free_slabs + node.pool.allocated_slabs
        used = node.pool.allocated_slabs
        parts.append(f"{name}: {used}/{total} slabs")
    return ", ".join(parts)


def main() -> None:
    fabric = Fabric()
    fabric.add_node("compute")
    controller = build_rack(fabric, num_nodes=4,
                            node_capacity=256 * u.MB,
                            slab_bytes=32 * u.MB)
    print(f"rack: {len(controller.nodes)} memory nodes, "
          f"{u.bytes_to_human(controller.total_capacity())} total")
    print("utilization:", utilization(controller), "\n")

    apps = {}
    for name, footprint in (("kv-store", 96 * u.MB),
                            ("analytics", 160 * u.MB),
                            ("batch-job", 64 * u.MB)):
        config = KonaConfig(fmem_capacity=16 * u.MB,
                            vfmem_capacity=512 * u.MB,
                            slab_bytes=32 * u.MB, slab_batch=1)
        runtime = KonaRuntime(config, controller=controller, fabric=fabric)
        region = runtime.mmap(footprint)
        # Touch a few pages so data actually lands remotely.
        for i in range(0, footprint, 4 * u.PAGE_2M):
            runtime.write(region.start + i)
        apps[name] = runtime
        print(f"{name}: mapped {u.bytes_to_human(footprint)}")
        print("  utilization:", utilization(controller))

    free_before = controller.free_slab_count()
    print(f"\nfree slabs with all three apps: {free_before}")

    print("\nretiring 'batch-job'...")
    apps.pop("batch-job").close()
    print("utilization:", utilization(controller))
    print(f"free slabs now: {controller.free_slab_count()} "
          f"(+{controller.free_slab_count() - free_before})")

    print("\ntelemetry for 'kv-store':\n")
    print(snapshot(apps["kv-store"]).render())

    for runtime in apps.values():
        runtime.close()


if __name__ == "__main__":
    main()
