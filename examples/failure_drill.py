#!/usr/bin/env python3
"""Failure drill: replication, node loss, degraded mode, recovery.

Walks through the paper's section 4.5 failure story on a live simulated
rack: evictions replicate to two memory nodes, the primary dies, reads
fail over transparently; without replication the affected pages degrade
to fault-on-access until the outage clears.

Run:  python examples/failure_drill.py
"""

import repro.common.units as u
from repro.common.errors import NodeFailure
from repro.kona import FallbackMode, KonaConfig, KonaRuntime


def replicated_scenario() -> None:
    print("=== with replication_factor=2 ===")
    config = KonaConfig(fmem_capacity=8 * u.MB, vfmem_capacity=128 * u.MB,
                        slab_bytes=32 * u.MB, replication_factor=2)
    rt = KonaRuntime(config, num_memory_nodes=3)
    region = rt.mmap(32 * u.MB)
    for i in range(512):
        rt.write(region.start + i * u.PAGE_4K)
    rt.flush()
    stats = rt.eviction.stats
    print(f"evicted with replication: {stats.dirty_bytes:,} useful bytes, "
          f"{stats.wire_bytes:,} wire bytes (2 replicas)")

    primary = rt.translation.resolve(region.start).node
    rt.controller.node(primary).fail()
    print(f"killed primary node {primary!r}")
    cost = rt.read(region.start + 600 * u.PAGE_4K)
    print(f"read after failure: {u.time_to_human(cost)} "
          f"(failed over to replica; "
          f"{rt.failures.counters['replica_failovers']} failovers)")
    rt.controller.node(primary).recover()
    print(f"recovered {primary!r}\n")


def unreplicated_scenario() -> None:
    print("=== without replication (page-fault fallback) ===")
    config = KonaConfig(fmem_capacity=8 * u.MB, vfmem_capacity=128 * u.MB,
                        slab_bytes=32 * u.MB)
    rt = KonaRuntime(config, failure_mode=FallbackMode.PAGE_FAULT_FALLBACK)
    region = rt.mmap(32 * u.MB)
    rt.read(region.start)

    primary = rt.translation.resolve(region.start).node
    rt.controller.node(primary).fail()
    print(f"killed {primary!r}; next fetch would hang the coherence "
          f"protocol, so Kona degrades the page instead:")
    try:
        rt.read(region.start + 100 * u.PAGE_4K)
    except NodeFailure as exc:
        print(f"  -> {exc}")
    vpn = rt.page_table.vpn_of(region.start + 100 * u.PAGE_4K)
    entry = rt.page_table.entry(vpn)
    print(f"  page {vpn} present bit: {entry.present} "
          f"(software now owns the retry/wait policy)")

    rt.controller.node(primary).recover()
    rearmed = rt.failures.recover_degraded()
    print(f"outage cleared: re-armed {rearmed} degraded page(s)")
    cost = rt.read(region.start + 100 * u.PAGE_4K)
    print(f"read after recovery: {u.time_to_human(cost)}")


def main() -> None:
    replicated_scenario()
    unreplicated_scenario()


if __name__ == "__main__":
    main()
