"""Robustness checks: the reproduced results are not knife-edge.

Two ways a calibrated model can lie: the result only holds at the one
fitted operating point, or only for the committed RNG seed.  These
benchmarks vary both and assert the paper's *comparative* conclusions
survive.
"""

import pytest

from conftest import run_once, write_report
import repro.common.units as u
from repro.analysis import paper, render_table
from repro.experiments import run_table2
from repro.tools.kcachesim import KCacheSim
from repro.workloads.amat import AmatSpec, redis_rand_spec


def _hot_sensitivity():
    """Kona-vs-LegoOS AMAT ratio across hot-access mixes."""
    out = {}
    for hot in (100.0, 220.0, 300.0, 600.0):
        base = redis_rand_spec(data_bytes=16 * u.MB)
        spec = AmatSpec(name=base.name, data_bytes=base.data_bytes,
                        op_span_lines=base.op_span_lines,
                        reuse=base.reuse,
                        write_fraction=base.write_fraction,
                        hot_per_data_access=hot)
        run = KCacheSim(spec).run(0.25, num_ops=25_000)
        out[hot] = {
            "kona_ns": run.amat_ns("kona"),
            "ratio_legoos": run.amat_ns("legoos") / run.amat_ns("kona"),
            "ratio_infiniswap": (run.amat_ns("infiniswap")
                                 / run.amat_ns("kona")),
        }
    return out


@pytest.mark.benchmark(group="robustness")
def test_hot_mix_sensitivity(benchmark):
    """The AMAT *ratios* barely move when the hot mix changes 6X."""
    result = run_once(benchmark, _hot_sensitivity)

    rows = [(hot, round(s["kona_ns"], 1), round(s["ratio_legoos"], 2),
             round(s["ratio_infiniswap"], 2))
            for hot, s in sorted(result.items())]
    write_report("robustness_hot_mix", render_table(
        ["hot/data", "kona AMAT ns", "vs legoos", "vs infiniswap"], rows,
        title="Robustness: AMAT ratios across hot-access mixes"))

    # Absolute AMAT scales with the mix (by design), and a hotter mix
    # dilutes the remote component, compressing the ratios toward 1...
    amats = [result[h]["kona_ns"] for h in sorted(result)]
    assert amats[0] > amats[-1]
    ratios = [result[h]["ratio_legoos"] for h in sorted(result)]
    assert ratios == sorted(ratios, reverse=True)
    # ...but the comparative conclusion survives a 6X mix change: Kona
    # stays well ahead of both baselines at every operating point.
    for s in result.values():
        assert s["ratio_legoos"] > 1.4
        assert s["ratio_infiniswap"] > 3.5


def _seed_stability():
    out = {}
    for seed in (3, 17, 91):
        result = run_table2(workloads=("redis-rand", "histogram",
                                       "label-propagation"),
                            windows=5, seed=seed)
        out[seed] = {name: result.measured[name]["4k"]
                     for name in result.measured}
    return out


@pytest.mark.benchmark(group="robustness")
def test_table2_seed_stability(benchmark):
    """Amplification calibration is a property of the generators, not
    of one lucky seed."""
    result = run_once(benchmark, _seed_stability)

    workloads = sorted(next(iter(result.values())))
    rows = [(seed, *(round(result[seed][w], 2) for w in workloads))
            for seed in sorted(result)]
    write_report("robustness_seeds", render_table(
        ["seed", *workloads], rows,
        title="Robustness: Table 2 (4KB) across seeds"))

    for workload in workloads:
        values = [result[seed][workload] for seed in result]
        spread = (max(values) - min(values)) / min(values)
        assert spread < 0.15, (workload, values)
        ref = paper.TABLE2[workload].amp_4k
        for value in values:
            assert abs(value - ref) / ref < 0.35, (workload, value)
