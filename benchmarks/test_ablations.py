"""Ablations of Kona's design choices (DESIGN.md section 5).

* replication factor on the eviction path (paper section 4.5);
* FMem associativity (paper: "does not significantly impact latency");
* dirty-tracking granularity between 64 B and 2 MB (Table 2 extension);
* next-page prefetching on sequential streams (section 4.4);
* the full-page writeback threshold in the CL log.
"""

import numpy as np
import pytest

from conftest import run_once, write_report
import repro.common.units as u
from repro.analysis import render_series, render_table
from repro.baselines.eviction_strategies import kona_cl_log, kona_vm_4k
from repro.kona import KonaConfig, KonaRuntime
from repro.tools.kcachesim import KCacheSim
from repro.tools.pintool import analyze_window
from repro.workloads import WORKLOADS, make_trace
from repro.workloads.amat import redis_rand_spec


def _replication_sweep():
    out = {}
    for factor in (1, 2, 3):
        config = KonaConfig(fmem_capacity=4 * u.MB,
                            vfmem_capacity=64 * u.MB,
                            slab_bytes=16 * u.MB,
                            replication_factor=factor)
        rt = KonaRuntime(config, num_memory_nodes=3)
        region = rt.mmap(8 * u.MB)
        for i in range(256):
            rt.write(region.start + i * u.PAGE_4K)
        rt.flush()
        stats = rt.eviction.stats
        out[factor] = {
            "wire_bytes": stats.wire_bytes,
            "evict_ns": stats.elapsed_ns,
            "dirty_bytes": stats.dirty_bytes,
        }
    return out


@pytest.mark.benchmark(group="ablations")
def test_ablation_replication(benchmark):
    sweep = run_once(benchmark, _replication_sweep)
    rows = [(f, s["wire_bytes"], round(s["evict_ns"] / 1000, 1))
            for f, s in sorted(sweep.items())]
    write_report("ablation_replication", render_table(
        ["replicas", "wire bytes", "evict us"], rows,
        title="Ablation: eviction replication factor"))

    # Wire bytes scale with the replica count; eviction slows but only
    # modestly (replica posts overlap on the wire, section 4.5).
    base = sweep[1]
    for factor in (2, 3):
        assert sweep[factor]["wire_bytes"] == factor * base["wire_bytes"]
        assert sweep[factor]["evict_ns"] < factor * base["evict_ns"]
        assert sweep[factor]["dirty_bytes"] == base["dirty_bytes"]
    # Kona's win compounds: each replica would have paid the page-
    # granularity amplification in a page-based system.
    assert base["dirty_bytes"] < 256 * u.PAGE_4K / 10


def _associativity_sweep():
    sim = KCacheSim(redis_rand_spec(data_bytes=16 * u.MB))
    return {ways: sim.run(0.5, ways=ways, num_ops=25_000).amat_ns("kona")
            for ways in (1, 2, 4, 8)}


@pytest.mark.benchmark(group="ablations")
def test_ablation_fmem_associativity(benchmark):
    sweep = run_once(benchmark, _associativity_sweep)
    write_report("ablation_associativity", render_series(
        [(w, round(a, 2)) for w, a in sorted(sweep.items())],
        "ways", "AMAT ns", title="Ablation: FMem associativity"))
    # Paper 6.2(2): associativity does not significantly impact latency
    # (4-way chosen for metadata economy, not hit rate).
    values = list(sweep.values())
    assert (max(values) - min(values)) / min(values) < 0.15


def _granularity_sweep():
    wl = WORKLOADS["redis-rand"]()
    trace = wl.generate(windows=4, seed=2)
    steady = trace.data[(trace.data["window"] >= wl.startup_windows)
                        & trace.data["write"]]
    out = {}
    for gran in (64, 256, 1024, 4096, 65536, u.PAGE_2M):
        # Dirty units at this granularity over unique written bytes.
        from repro.workloads.trace import Trace
        t = Trace(steady.copy(), trace.memory_bytes)
        t.data["window"] = 0
        rec = analyze_window(t, 0)
        units_dirty = np.unique(
            steady["addr"] // np.uint64(gran)).size
        out[gran] = units_dirty * gran / rec.unique_bytes
    return out


@pytest.mark.benchmark(group="ablations")
def test_ablation_tracking_granularity(benchmark):
    sweep = run_once(benchmark, _granularity_sweep)
    write_report("ablation_granularity", render_series(
        [(g, round(a, 2)) for g, a in sorted(sweep.items())],
        "granularity B", "amplification",
        title="Ablation: dirty-tracking granularity (Redis-Rand)"))
    # Amplification grows monotonically with tracking granularity; the
    # knee sits right where Kona operates (64 B).
    grans = sorted(sweep)
    values = [sweep[g] for g in grans]
    assert values == sorted(values)
    assert sweep[64] < 2.0
    assert sweep[4096] > 10.0


def _prefetch_comparison():
    out = {}
    for prefetch in (False, True):
        config = KonaConfig(fmem_capacity=8 * u.MB,
                            vfmem_capacity=64 * u.MB,
                            slab_bytes=16 * u.MB,
                            prefetch_next_page=prefetch)
        rt = KonaRuntime(config)
        region = rt.mmap(8 * u.MB)
        stall = 0.0
        # A sequential scan: the pattern hardware prefetchers love and
        # page-fault systems cannot help (faults serialize).
        for page in range(1024):
            stall += rt.read(region.start + page * u.PAGE_4K)
        out[prefetch] = {
            "stall_ns": stall,
            "remote_on_path": rt.agent.counters["remote_fetches"]
            - rt.agent.counters["pages_prefetched"],
        }
    return out


@pytest.mark.benchmark(group="ablations")
def test_ablation_prefetch(benchmark):
    result = run_once(benchmark, _prefetch_comparison)
    rows = [(p, round(s["stall_ns"] / 1000, 1)) for p, s in result.items()]
    write_report("ablation_prefetch", render_table(
        ["prefetch", "stall us"], rows,
        title="Ablation: next-page prefetch on a sequential scan"))
    # Prefetching converts most critical-path remote fetches into
    # background fills (paper section 4.4: Kona re-enables prefetching
    # across page boundaries).
    assert result[True]["stall_ns"] < 0.25 * result[False]["stall_ns"]


def _threshold_sweep():
    out = {}
    vm = kona_vm_4k(4096, 60)
    for threshold in (16, 32, 56, 64):
        result = kona_cl_log(4096, 60, "contiguous",
                             full_page_threshold=threshold)
        out[threshold] = result.goodput_relative_to(vm)
    return out


@pytest.mark.benchmark(group="ablations")
def test_ablation_full_page_threshold(benchmark):
    sweep = run_once(benchmark, _threshold_sweep)
    write_report("ablation_full_page_threshold", render_series(
        [(t, round(v, 2)) for t, v in sorted(sweep.items())],
        "threshold lines", "goodput vs Kona-VM",
        title="Ablation: full-page writeback threshold at 60 dirty lines"))
    # At 60 dirty lines, shipping the whole page (threshold <= 60)
    # beats logging 60 individual lines (threshold 64).
    assert sweep[56] > sweep[64]
