"""Figure 9: per-window dirty amplification reduction (section 6.3).

KTracker's content-diff tracking vs 4 KB pages, per one-second window:
Redis-Rand fluctuates between 2X and 10X; Redis-Seq sits around 2X;
the first ~10 (startup) windows look alike for both.
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import paper, render_series
from repro.experiments import run_fig9


@pytest.mark.benchmark(group="fig9")
def test_fig9_amplification_reduction(benchmark):
    result = run_once(benchmark, run_fig9, windows_rand=40, windows_seq=24)

    blocks = []
    for workload, series in result.series.items():
        rows = [(w, round(r, 2)) for w, r in series]
        blocks.append(render_series(
            rows, "window", "4KB vs CL amplification",
            title=f"Figure 9 — {workload}"))
    write_report("fig9_window_amplification", "\n\n".join(blocks))

    lo, hi = result.band("redis-rand")
    band = paper.FIG9_REDIS_RAND_BAND
    # The random workload's reduction fluctuates across the 2-10X band.
    steady = result.steady_ratios("redis-rand")
    inside = [r for r in steady if band[0] <= r <= band[1]]
    assert len(inside) >= 0.7 * len(steady)
    assert hi / lo > 2.0

    # The sequential workload sits around 2X.
    seq_mean = result.mean("redis-seq")
    assert 1.5 <= seq_mean <= 3.2

    # Startup windows (bulk population) look alike across workloads.
    first_rand = result.series["redis-rand"][0][1]
    first_seq = result.series["redis-seq"][0][1]
    assert abs(first_rand - first_seq) / first_seq < 0.25
