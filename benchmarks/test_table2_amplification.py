"""Table 2: dirty data amplification for different tracking granularities.

Regenerates the paper's Table 2 for all nine workloads and checks every
cell against the published value within tolerance.
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import render_table
from repro.experiments import run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_amplification(benchmark):
    result = run_once(benchmark, run_table2, windows=6, seed=3)

    text = render_table(
        ["workload", "4KB", "2MB", "64B",
         "paper 4KB", "paper 2MB", "paper 64B"],
        result.rows(),
        title="Table 2: dirty data amplification (measured vs paper)")
    write_report("table2_amplification", text)

    for name in result.measured:
        assert result.relative_error(name, "4k") < 0.30, name
        assert result.relative_error(name, "cl") < 0.20, name
        assert result.relative_error(name, "2m") < 0.40, name
        # Qualitative claims: every app amplifies >2X at page
        # granularity; cache-line amplification is close to 1.
        assert result.measured[name]["4k"] > 2.0
        assert result.measured[name]["cl"] < 2.0
