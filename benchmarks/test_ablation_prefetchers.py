"""Ablation: prefetch policies on the Kona fetch path.

Page faults forbid prefetching in page-based systems; Kona's fault-free
path re-enables it (paper sections 3 and 4.4).  This ablation compares
the policies — none, next-page, constant-stride, and Leap's
majority-trend (the paper's reference [57]) — across sequential,
strided, and random page-access patterns.
"""

import numpy as np
import pytest

from conftest import run_once, write_report
import repro.common.units as u
from repro.analysis import render_table
from repro.cluster.memnode import MemoryNode
from repro.fpga.agent import MemoryAgent
from repro.fpga.fmem import FMemCache
from repro.fpga.prefetcher import PREFETCHERS, make_prefetcher
from repro.fpga.translation import RemoteTranslationMap
from repro.mem.address import AddressRange
from repro.net.fabric import Fabric

PAGES = 192


def _agent(policy):
    vfmem = AddressRange(0, 16 * u.MB)
    fabric = Fabric()
    node = MemoryNode("m0", 64 * u.MB, fabric, slab_bytes=16 * u.MB)
    tmap = RemoteTranslationMap(0, 16 * u.MB)
    tmap.bind(0, node.grant_slab())
    return MemoryAgent(vfmem, FMemCache(8 * u.MB), tmap,
                       prefetcher=make_prefetcher(policy))


def _patterns(rng):
    sequential = np.arange(PAGES)
    strided = np.arange(PAGES) * 3 % (16 * u.MB // u.PAGE_4K)
    random = rng.permutation(16 * u.MB // u.PAGE_4K)[:PAGES]
    return {"sequential": sequential, "strided": strided, "random": random}


def _run():
    rng = np.random.default_rng(3)
    patterns = _patterns(rng)
    out = {}
    for policy in PREFETCHERS:
        out[policy] = {}
        for name, pages in patterns.items():
            agent = _agent(policy)
            stall = 0.0
            for page in pages.tolist():
                agent.directory.get_shared(int(page) * u.PAGE_4K, 1)
                stall += agent.last_access_ns
            out[policy][name] = {
                "stall_us": stall / 1000,
                "prefetched": agent.counters["pages_prefetched"],
            }
    return out


@pytest.mark.benchmark(group="ablations")
def test_ablation_prefetch_policies(benchmark):
    result = run_once(benchmark, _run)

    rows = []
    for policy, per_pattern in result.items():
        for pattern, stats in per_pattern.items():
            rows.append((policy, pattern, round(stats["stall_us"], 1),
                         stats["prefetched"]))
    write_report("ablation_prefetch_policies", render_table(
        ["policy", "pattern", "stall us", "pages prefetched"], rows,
        title="Ablation: prefetch policies by access pattern"))

    none = result["none"]
    # Sequential: every prefetcher beats no-prefetch decisively.
    for policy in ("next-page", "stride", "leap"):
        assert (result[policy]["sequential"]["stall_us"]
                < 0.5 * none["sequential"]["stall_us"]), policy
    # Strided: only stride-aware policies help; next-page fetches the
    # wrong neighbours.
    assert (result["stride"]["strided"]["stall_us"]
            < 0.6 * none["strided"]["stall_us"])
    assert (result["leap"]["strided"]["stall_us"]
            < 0.6 * none["strided"]["stall_us"])
    assert (result["next-page"]["strided"]["stall_us"]
            > 0.9 * none["strided"]["stall_us"])
    # Random: nothing helps, and no policy should do real damage.
    for policy in PREFETCHERS:
        assert (result[policy]["random"]["stall_us"]
                > 0.85 * none["random"]["stall_us"]), policy
