"""Figure 7: Kona vs Kona-VM microbenchmark (section 6.1).

Read+write one cache line per page, per-thread regions, 50% local
cache, eviction concurrent.  Paper: Kona is 6.6X faster at 1 thread,
4-5X at 2-4 threads; NoEvict variants differ 3-5X; NoWP (incomplete)
is still 1.2-2.9X slower than Kona.
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import paper, render_table
from repro.experiments import run_fig7
import repro.common.units as u


@pytest.mark.benchmark(group="fig7")
def test_fig7_kona_vs_kona_vm(benchmark):
    result = run_once(benchmark, run_fig7, region_bytes=16 * u.MB)

    rows = [(s, t, round(sec, 4)) for s, t, sec in result.rows()]
    text = render_table(["system", "threads", "time (s)"], rows,
                        title="Figure 7: microbenchmark execution time "
                              "(16 MB/thread scale)")
    speedups = render_table(
        ["threads", "kona vs kona-vm"],
        [(t, round(result.speedup(t), 2)) for t in (1, 2, 4)],
        title="Speedups")
    write_report("fig7_microbenchmark", text + "\n\n" + speedups)

    for threads, band in paper.FIG7_SPEEDUP.items():
        assert paper.within(result.speedup(threads), band), threads
    assert paper.within(result.noevict_speedup(), paper.FIG7_NOEVICT_SPEEDUP)
    assert paper.within(result.nowp_slowdown(), paper.FIG7_NOWP_SLOWDOWN)
    # Total work grows with threads for every system (paper's x-axis).
    for system, per_thread in result.times_ns.items():
        times = [per_thread[t] for t in sorted(per_thread)]
        assert times == sorted(times), system
