"""In-text experiments: sections 2.1, 6.1, 6.2(3), 6.3(3)."""

import pytest

from conftest import run_once, write_report
from repro.analysis import paper, render_comparison
from repro.experiments import (
    run_sec21_motivation,
    run_sec61_baseline_parity,
    run_sec62_simulation_overhead,
    run_sec63_tracker_overhead,
)


@pytest.mark.benchmark(group="sections")
def test_sec21_motivation(benchmark):
    """Redis under Infiniswap with 25% remote data (section 2.1)."""
    result = run_once(benchmark, run_sec21_motivation)
    text = render_comparison(
        {k: round(v, 2) for k, v in result.items()},
        {"throughput_drop": "> 0.60", "fetch_us": "> 40",
         "rdma_4k_us": "~3", "evict_us": "> 32"},
        title="Section 2.1: motivation numbers")
    write_report("sec21_motivation", text)

    assert result["throughput_drop"] > paper.MOTIVATION_THROUGHPUT_DROP_MIN
    assert result["fetch_us"] >= 36.0
    assert 2.5 <= result["rdma_4k_us"] <= 3.6
    assert result["evict_us"] >= 30.0
    # The software stack, not the wire, is the bottleneck.
    assert result["fetch_us"] / result["rdma_4k_us"] > 10.0


@pytest.mark.benchmark(group="sections")
def test_sec61_kona_vm_vs_infiniswap(benchmark):
    """Kona-VM parity check: similar to or up to 60% faster (6.1)."""
    result = run_once(benchmark, run_sec61_baseline_parity)
    text = render_comparison(
        {k: round(v, 3) for k, v in result.items()},
        {"speedup_fraction": "<= 0.60 (paper: 'up to 60%')"},
        title="Section 6.1: Kona-VM vs Infiniswap")
    write_report("sec61_baseline_parity", text)

    assert 0.0 <= result["speedup_fraction"] <= \
        paper.KONA_VM_VS_INFINISWAP_MAX_SPEEDUP + 0.05
    assert result["kona_vm_s"] <= result["infiniswap_s"]


@pytest.mark.benchmark(group="sections")
def test_sec62_kcachesim_overhead(benchmark):
    """KCacheSim slowdown vs native replay (paper: 43X)."""
    slowdown = run_once(benchmark, run_sec62_simulation_overhead)
    write_report("sec62_simulation_overhead",
                 f"KCacheSim slowdown vs native replay: {slowdown:.0f}X "
                 f"(paper: 43X lower throughput)")
    assert slowdown > paper.KCACHESIM_SLOWDOWN_MIN


@pytest.mark.benchmark(group="sections")
def test_sec63_ktracker_overhead(benchmark):
    """KTracker emulation overhead at native Redis scale (6.3)."""
    result = run_once(benchmark, run_sec63_tracker_overhead)
    text = render_comparison(
        {k: round(v, 3) for k, v in result.items()},
        {"loss": "~0.60", "diff_share": "~0.95", "ptrace_share": "~0.05"},
        title="Section 6.3: KTracker emulation overhead")
    write_report("sec63_tracker_overhead", text)

    assert paper.within(result["loss"], paper.KTRACKER_LOSS)
    assert result["diff_share"] > paper.KTRACKER_DIFF_SHARE_MIN
    assert result["ptrace_share"] < 0.15
