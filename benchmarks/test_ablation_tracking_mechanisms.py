"""Ablation: dirty-tracking mechanisms — write-protection vs PML vs Kona.

Positions Kona against Intel's Page Modification Logging (related work,
paper section 8): PML removes most of write-protection's fault cost but
keeps page granularity, so it fixes the overhead axis and not the
amplification axis.  Only coherence-based tracking fixes both.
"""

import numpy as np
import pytest

from conftest import run_once, write_report
import repro.common.units as u
from repro.analysis import render_table
from repro.vm.faults import FaultPath, PageFaultModel
from repro.vm.pml import PMLTracker
from repro.vm.writeprotect import WriteProtectTracker
from repro.workloads import redis_rand


def _run():
    wl = redis_rand()
    trace = wl.generate(windows=4, seed=9)
    steady = trace.data[(trace.data["window"] >= wl.startup_windows)
                        & trace.data["write"]]
    write_addrs = steady["addr"]
    unique_bytes = int(steady["size"].sum())   # upper bound on payload

    wp = WriteProtectTracker(PageFaultModel(FaultPath.USERFAULTFD))
    all_pages = {int(p) for p in
                 np.unique(write_addrs // np.uint64(u.PAGE_4K))}
    wp.track(all_pages)          # every remote page starts protected
    wp.begin_window()
    wp_cost = wp.process_window(write_addrs)

    pml = PMLTracker()
    pml.begin_window()
    pml_cost = pml.process_window(write_addrs)

    lines = np.unique(write_addrs // np.uint64(u.CACHE_LINE))
    kona_bytes = int(lines.size) * u.CACHE_LINE

    return {
        "write-protect": {"app_cost_ns": wp_cost,
                          "tracked_bytes": wp.dirty_bytes()},
        "pml": {"app_cost_ns": pml_cost,
                "tracked_bytes": pml.dirty_bytes()},
        "kona": {"app_cost_ns": 0.0, "tracked_bytes": kona_bytes},
        "payload_bytes": unique_bytes,
    }


@pytest.mark.benchmark(group="ablations")
def test_ablation_tracking_mechanisms(benchmark):
    result = run_once(benchmark, _run)
    payload = result.pop("payload_bytes")

    rows = [(name, round(s["app_cost_ns"] / 1000, 1), s["tracked_bytes"],
             round(s["tracked_bytes"] / payload, 2))
            for name, s in result.items()]
    write_report("ablation_tracking_mechanisms", render_table(
        ["mechanism", "app cost (us)", "tracked bytes", "amplification"],
        rows, title="Ablation: tracking mechanism (Redis-Rand writes)"))

    wp, pml, kona = (result["write-protect"], result["pml"], result["kona"])
    # PML kills most of the fault overhead...
    assert pml["app_cost_ns"] < wp["app_cost_ns"] / 10
    # ...but the tracked (shippable) bytes are identical to WP's.
    assert pml["tracked_bytes"] == wp["tracked_bytes"]
    # Kona is free for the app AND tracks an order of magnitude less.
    assert kona["app_cost_ns"] == 0.0
    assert kona["tracked_bytes"] < wp["tracked_bytes"] / 10
