"""Figure 8(a-c): AMAT vs local cache size (section 6.2).

At a 25% local cache, Kona's AMAT is ~1.7X lower than LegoOS and ~5X
lower than Infiniswap; Linear Regression's streaming pattern makes its
curve flat; Kona-main bounds the FMem NUMA overhead (2-25%).
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import paper, render_table
from repro.experiments import run_fig8_amat
from repro.experiments.fig8 import SYSTEMS


@pytest.mark.benchmark(group="fig8")
def test_fig8_amat_vs_cache_size(benchmark):
    result = run_once(benchmark, run_fig8_amat, num_ops=40_000)

    blocks = []
    for workload in result.amat_ns:
        rows = [(pct, *(round(v, 1) for v in vals))
                for pct, *vals in result.rows(workload)]
        blocks.append(render_table(
            ["cache %", *SYSTEMS], rows,
            title=f"Figure 8 — {workload}: AMAT (ns)"))
    write_report("fig8_amat", "\n\n".join(blocks))

    # Headline: Kona vs LegoOS / Infiniswap at a 25% cache.
    for workload in ("redis-rand", "graph-coloring"):
        lego = result.improvement_at(workload, 0.25, "legoos")
        swap = result.improvement_at(workload, 0.25, "infiniswap")
        assert paper.within(lego, paper.FIG8_KONA_VS_LEGOOS_AT_25), workload
        assert paper.within(swap, paper.FIG8_KONA_VS_INFINISWAP_AT_25), workload

    # AMAT decreases with cache size for the reuse-ful workloads; all
    # systems converge at a full-size cache.
    for workload in ("redis-rand", "graph-coloring"):
        series = result.amat_ns[workload]["legoos"]
        fractions = sorted(series)
        values = [series[f] for f in fractions]
        assert values == sorted(values, reverse=True), workload
        conv = result.improvement_at(workload, 1.0, "legoos")
        assert conv < 1.5

    # Linear Regression: flat (streaming, no reuse) past a small cache.
    linreg = result.amat_ns["linear-regression"]["kona"]
    nonzero = [linreg[f] for f in sorted(linreg) if f > 0]
    assert (max(nonzero) - min(nonzero)) / max(nonzero) < 0.2

    # NUMA overhead of caching in FMem (Kona vs Kona-main): worst for
    # Linear Regression (paper: 25%), small for the others (2-13%).
    worst = result.numa_overhead("linear-regression", 0.25)
    assert paper.within(worst, paper.FIG8_KONA_MAIN_NUMA_OVERHEAD)
    for workload in ("redis-rand", "graph-coloring"):
        overhead = result.numa_overhead(workload, 0.25)
        assert 0.0 <= overhead <= 0.15, workload
        assert overhead < worst
