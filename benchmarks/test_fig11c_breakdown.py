"""Figure 11(c): CL-log eviction time breakdown (section 6.4).

At application-typical dirty densities, most of the time goes to
copying lines into the RDMA buffer, with 15-20% each on the bitmap
scan and the RDMA writes and a small acknowledgment wait.
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import paper, render_table
from repro.experiments import run_fig11c_breakdown


@pytest.mark.benchmark(group="fig11")
def test_fig11c_time_breakdown(benchmark):
    breakdown = run_once(benchmark, run_fig11c_breakdown)

    buckets = ("bitmap", "copy", "rdma_write", "ack_wait")
    rows = []
    for n, shares in sorted(breakdown.items()):
        rows.append((n, *(round(shares.get(b, 0.0), 3) for b in buckets),
                     round(shares["total_ms"], 2)))
    text = render_table(
        ["dirty lines", *buckets, "total ms"], rows,
        title="Figure 11c: Kona CL-log eviction time breakdown")
    write_report("fig11c_breakdown", text)

    # The paper's shares, checked at the mid density (8 lines/page).
    shares = breakdown[8]
    for bucket, band in paper.FIG11C_BANDS.items():
        assert paper.within(shares[bucket], band), bucket
    # Copy dominates at the typical densities.
    for n in (1, 8):
        shares = breakdown[n]
        assert shares["copy"] == max(
            shares[b] for b in buckets if b in shares)
    # Total time grows with dirty data volume.
    totals = [breakdown[n]["total_ms"] for n in sorted(breakdown)]
    assert totals == sorted(totals)
