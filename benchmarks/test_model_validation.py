"""Model validation: the closed-form Figure 11 cost model vs the DES.

The benchmark harness prices eviction with a closed-form model
(posting + exposed wire + flow-control floor).  This benchmark runs
the discrete-event pipeline — producer, NIC, receiver with ring
credits, all as events — across the dirty-density sweep and checks the
closed form tracks it, including the producer->receiver bottleneck
flip.
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import render_table
from repro.baselines.eviction_strategies import kona_cl_log
from repro.kona.pipeline import EvictionPipeline

DENSITIES = (1, 2, 4, 8, 16, 32, 55)
PAGES = 4096


def _run():
    pipe = EvictionPipeline()
    rows = []
    for n in DENSITIES:
        des = pipe.run(PAGES, n)
        closed = kona_cl_log(PAGES, n)
        rows.append({
            "n": n,
            "des_ms": des.elapsed_ns / 1e6,
            "closed_ms": closed.total_ns / 1e6,
            "ratio": closed.total_ns / des.elapsed_ns,
            "bottleneck": des.bottleneck,
        })
    return rows


@pytest.mark.benchmark(group="validation")
def test_closed_form_vs_des(benchmark):
    rows = run_once(benchmark, _run)

    table = [(r["n"], round(r["des_ms"], 2), round(r["closed_ms"], 2),
              round(r["ratio"], 2), r["bottleneck"]) for r in rows]
    write_report("model_validation", render_table(
        ["dirty lines", "DES ms", "closed-form ms", "ratio", "bottleneck"],
        table, title="Eviction model validation: DES vs closed form"))

    for r in rows:
        assert 0.95 <= r["ratio"] <= 1.35, r
    # The bottleneck flips from producer to receiver as pages fill.
    assert rows[0]["bottleneck"] == "producer"
    assert rows[-1]["bottleneck"] == "receiver"
    flips = sum(1 for a, b in zip(rows, rows[1:])
                if a["bottleneck"] != b["bottleneck"])
    assert flips == 1
