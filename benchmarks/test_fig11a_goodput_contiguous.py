"""Figure 11(a): eviction goodput, contiguous dirty lines (section 6.4).

Kona's CL log vs Kona-VM's 4 KB writes plus the two idealized no-copy
baselines: 4-5X advantage for 1-4 contiguous lines, parity at a fully
dirty page, the ideal 4 KB path a constant ~1.5X over Kona-VM.
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import paper, render_table
from repro.experiments import run_fig11


@pytest.mark.benchmark(group="fig11")
def test_fig11a_contiguous_goodput(benchmark):
    result = run_once(benchmark, run_fig11, pattern="contiguous")

    strategies = sorted(result.relative_goodput)
    rows = [(n, *(round(v, 2) for v in vals))
            for n, *vals in result.rows()]
    text = render_table(["dirty lines", *strategies], rows,
                        title="Figure 11a: goodput relative to Kona-VM "
                              "(contiguous)")
    write_report("fig11a_goodput_contiguous", text)

    kona = dict(result.series("kona-cl-log"))
    for n in (1, 2, 4):
        assert paper.within(kona[n], paper.FIG11A_CONTIG_1_4), n
    assert paper.within(kona[64], paper.FIG11A_FULL_PAGE_PAR)
    # Kona never loses on contiguous patterns.
    assert min(kona.values()) >= 0.9

    ideal4k = dict(result.series("ideal-4k-nocopy"))
    for n, ratio in ideal4k.items():
        assert paper.within(ratio, paper.FIG11_IDEAL_4K), n

    # Ideal CL writes beat everything for a few contiguous lines but
    # fall back toward the page path as the page fills.
    ideal_cl = dict(result.series("ideal-cl-nocopy"))
    assert ideal_cl[1] > kona[1]
    assert ideal_cl[64] < ideal_cl[1] / 3
