"""Ablation: watermark-driven proactive eviction.

The paper's Eviction Handler "monitors the cache utilization and
evicts pages to make room for new remote pages" (section 4.1).  This
ablation compares demand-only eviction (a victim is chosen while the
fetch waits) against proactive watermark reclaim (a background tick
keeps occupancy below the high watermark), measuring FMem occupancy
discipline and the work done by the background reclaimer.
"""

import numpy as np
import pytest

from conftest import run_once, write_report
import repro.common.units as u
from repro.analysis import render_table
from repro.kona import KonaConfig, KonaRuntime
from repro.workloads.synthetic import one_line_per_page

REGION = 24 * u.MB
FMEM = 8 * u.MB


def _run():
    out = {}
    for mode, (low, high) in (("demand-only", (1.0, 1.0)),
                              ("watermarks", (0.70, 0.85))):
        config = KonaConfig(fmem_capacity=FMEM,
                            vfmem_capacity=64 * u.MB,
                            slab_bytes=16 * u.MB,
                            evict_low_watermark=low,
                            evict_high_watermark=high)
        rt = KonaRuntime(config)
        region = rt.mmap(REGION)
        addrs, writes = one_line_per_page(REGION, base=region.start)[0]
        report = rt.run_trace(addrs, writes)
        occupancy = rt.fmem.occupancy_fraction
        rt.flush()     # drain everything so conservation can be checked
        out[mode] = {
            "elapsed_ms": report.elapsed_ns / 1e6,
            "occupancy_frac": occupancy,
            "proactive": rt.agent.counters["proactive_reclaims"],
            "demand_evictions": rt.fmem.counters["evictions"],
            "dirty_bytes": rt.eviction.stats.dirty_bytes,
        }
    return out


@pytest.mark.benchmark(group="ablations")
def test_ablation_watermark_eviction(benchmark):
    result = run_once(benchmark, _run)

    rows = [(mode, round(s["elapsed_ms"], 2),
             round(s["occupancy_frac"], 3), s["proactive"],
             s["demand_evictions"]) for mode, s in result.items()]
    write_report("ablation_watermarks", render_table(
        ["mode", "elapsed ms", "final occupancy", "proactive reclaims",
         "demand evictions"], rows,
        title="Ablation: demand vs watermark eviction"))

    demand = result["demand-only"]
    marks = result["watermarks"]
    # The reclaimer actually runs, and keeps occupancy at/below the
    # high watermark while demand-only sits at ~full.
    assert marks["proactive"] > 0
    assert demand["proactive"] == 0
    # Between reclaimer ticks a burst of fills can overshoot the high
    # watermark slightly; the discipline bound includes that slack.
    assert marks["occupancy_frac"] <= 0.92
    assert demand["occupancy_frac"] > 0.95
    # After a full drain, the same dirty data shipped either way
    # (conservation: proactive reclaim changes *when*, not *what*).
    assert marks["dirty_bytes"] == demand["dirty_bytes"]
    assert marks["dirty_bytes"] == (REGION // u.PAGE_4K) * u.CACHE_LINE
