"""Figure 2: CDF of accessed cache lines per page (Redis).

Redis-Rand is skewed toward pages with 1-8 accessed lines; Redis-Seq
toward fully-accessed pages; both modes appear in both workloads.
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import render_series
from repro.tools.pintool import lines_per_page_cdf
from repro.workloads import redis_rand, redis_seq
from repro.workloads.trace import Trace


def _steady(workload, windows=5, seed=0):
    trace = workload.generate(windows=windows, seed=seed)
    mask = trace.windows >= workload.startup_windows
    return Trace(trace.data[mask], trace.memory_bytes, trace.name)


def _run():
    out = {}
    for factory in (redis_rand, redis_seq):
        wl = factory()
        trace = _steady(wl)
        out[wl.name] = {
            "reads": lines_per_page_cdf(trace, writes=False),
            "writes": lines_per_page_cdf(trace, writes=True),
        }
    return out


@pytest.mark.benchmark(group="fig2")
def test_fig2_accessed_lines_cdf(benchmark):
    cdfs = run_once(benchmark, _run)

    lines = []
    for workload, curves in cdfs.items():
        for kind, cdf in curves.items():
            series = [(n, round(frac, 3)) for n, frac in cdf.series()]
            lines.append(render_series(
                series, "lines/page", "CDF",
                title=f"Figure 2 — {workload} ({kind})"))
    write_report("fig2_spatial_locality", "\n\n".join(lines))

    rand_w = cdfs["redis-rand"]["writes"]
    seq_w = cdfs["redis-seq"]["writes"]
    # Rand: overwhelmingly 1-8 lines per page.
    assert rand_w.at(8) > 0.9
    # Seq: bimodal with a large fully-written mode.
    assert 1.0 - seq_w.at(63) > 0.15
    assert seq_w.at(16) > 0.3
    # Reads show the same split.
    assert cdfs["redis-rand"]["reads"].at(8) > 0.8
    assert 1.0 - cdfs["redis-seq"]["reads"].at(63) > 0.25
