"""Figure 3: CDF of contiguous accessed cache lines per page (Redis).

Most segments are 1-4 lines for both workloads; Redis-Seq additionally
has a page-length (64-line) segment mode.
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import render_series
from repro.tools.pintool import segment_length_cdf
from repro.workloads import redis_rand, redis_seq
from repro.workloads.trace import Trace


def _run():
    out = {}
    for factory in (redis_rand, redis_seq):
        wl = factory()
        trace = wl.generate(windows=5, seed=0)
        mask = trace.windows >= wl.startup_windows
        steady = Trace(trace.data[mask], trace.memory_bytes, trace.name)
        out[wl.name] = {
            "reads": segment_length_cdf(steady, writes=False),
            "writes": segment_length_cdf(steady, writes=True),
        }
    return out


@pytest.mark.benchmark(group="fig3")
def test_fig3_contiguous_segments_cdf(benchmark):
    cdfs = run_once(benchmark, _run)

    blocks = []
    for workload, curves in cdfs.items():
        for kind, cdf in curves.items():
            series = [(n, round(frac, 3)) for n, frac in cdf.series()]
            blocks.append(render_series(
                series, "segment lines", "CDF",
                title=f"Figure 3 — {workload} ({kind})"))
    write_report("fig3_contiguity", "\n\n".join(blocks))

    # "Most segments are of length 1 to 4 contiguous cache-lines for
    # both workloads."
    assert cdfs["redis-rand"]["writes"].at(4) > 0.75
    assert cdfs["redis-seq"]["writes"].at(4) > 0.5
    # "For Redis-Seq, a large fraction of the segments are page-length."
    seq = cdfs["redis-seq"]["writes"]
    assert 1.0 - seq.at(63) > 0.1
    # "For Redis-Rand, contiguous segments are short."
    rand = cdfs["redis-rand"]["writes"]
    assert 1.0 - rand.at(8) < 0.05
