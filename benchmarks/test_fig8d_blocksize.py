"""Figure 8(d): data-fetch block-size sweep (section 6.2).

Small blocks waste the applications' spatial locality; very large
blocks add conflict misses and wire time.  The paper found 1 KB best
with 4 KB close behind (which Kona adopts to simplify metadata).
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import paper, render_table
from repro.experiments import run_fig8d_blocksize
from repro.experiments.fig8 import best_block
import repro.common.units as u


@pytest.mark.benchmark(group="fig8")
def test_fig8d_block_size_sweep(benchmark):
    sweep = run_once(benchmark, run_fig8d_blocksize, num_ops=40_000)

    blocks = sorted(next(iter(sweep.values())))
    rows = [(b, *(round(sweep[f][b], 1) for f in sorted(sweep)))
            for b in blocks]
    text = render_table(
        ["block B", *(f"cache {int(f*100)}%" for f in sorted(sweep))],
        rows, title="Figure 8d — Redis-Rand: AMAT (ns) by fetch block size")
    write_report("fig8d_blocksize", text)

    for fraction in (0.27, 0.54):
        series = sweep[fraction]
        # 1 KB is the sweet spot; 4 KB within a small margin.
        assert best_block(series) == paper.FIG8D_BEST_BLOCK
        assert series[4096] / series[1024] < 1.35
        # Line-sized blocks miss spatial locality; 32 KB blocks pay
        # conflicts + wire time.
        assert series[64] > series[1024]
        assert series[32 * u.KB] > series[4096]
