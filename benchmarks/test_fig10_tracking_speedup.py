"""Figure 10: speedup relative to write-protection (section 6.3).

Coherence-based tracking removes write-protect faults and protect
rounds from the application; the resulting speedup ranges from 1%
(Redis-Seq, Histogram) to 35% (Redis-Rand).
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import paper, render_table
from repro.experiments import run_fig10


@pytest.mark.benchmark(group="fig10")
def test_fig10_speedup_vs_write_protect(benchmark):
    result = run_once(benchmark, run_fig10)

    rows = [(name, round(pct, 1)) for name, pct in result.rows()]
    text = render_table(["workload", "speedup %"], rows,
                        title="Figure 10: speedup relative to "
                              "write-protection")
    write_report("fig10_tracking_speedup", text)

    for name, band in paper.FIG10_SPEEDUP_PCT.items():
        assert paper.within(result.speedup_pct[name], band), name
    # Range claim: 1% (redis-seq/histogram) to 35% (redis-rand).
    assert result.max_workload() == "redis-rand"
    assert 30.0 <= result.speedup_pct["redis-rand"] <= 38.0
    assert result.speedup_pct["redis-seq"] <= 3.0
    assert result.speedup_pct["histogram"] <= 3.0
