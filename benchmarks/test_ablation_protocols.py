"""Ablation: coherence protocol family and tracking timeliness.

Any invalidation-based protocol gives Kona its two primitives, but the
*timing* of dirty-data visibility differs (paper section 2.3):

* **MSI** — every first write is an explicit GetM upgrade, so with
  eager tracking the bitmap is current the moment a line is written;
  eviction needs no snooping.
* **MESI** — silent E->M upgrades mean the home only learns about
  dirty lines on writeback, so evicting a page must snoop the CPU
  caches for still-resident dirty lines (section 4.4).

The trade: MSI pays an upgrade message per written line on the
critical path for *eager knowledge* of what is dirty.  Notably, that
knowledge does not reduce eviction-time snooping — snoops exist to
pull the latest *data* out of the CPU caches, and the data is in the
caches regardless of when the home learned the line was dirty.  The
paper picks unmodified MESI; this ablation shows that choice is free.
"""

import pytest

from conftest import run_once, write_report
import repro.common.units as u
from repro.analysis import render_table
from repro.kona import KonaConfig, KonaRuntime
from repro.workloads.synthetic import one_line_per_page

REGION = 8 * u.MB


def _run():
    out = {}
    configs = {
        "mesi": dict(protocol="mesi", eager_upgrade_tracking=False),
        "msi-eager": dict(protocol="msi", eager_upgrade_tracking=True),
        "moesi": dict(protocol="moesi", eager_upgrade_tracking=False),
    }
    for name, extra in configs.items():
        config = KonaConfig(fmem_capacity=2 * u.MB,
                            vfmem_capacity=64 * u.MB,
                            slab_bytes=16 * u.MB, **extra)
        rt = KonaRuntime(config)
        region = rt.mmap(REGION)
        addrs, writes = one_line_per_page(REGION, base=region.start)[0]
        report = rt.run_trace(addrs, writes)
        rt.flush()
        out[name] = {
            "elapsed_ms": report.elapsed_ns / 1e6,
            "upgrades": rt.agent.counters["upgrades_seen"],
            "snooped": rt.agent.counters["lines_snooped"],
            "tracked": rt.agent.counters["writebacks_tracked"],
            "dirty_bytes": rt.eviction.stats.dirty_bytes,
        }
    return out


@pytest.mark.benchmark(group="ablations")
def test_ablation_protocol_tracking(benchmark):
    result = run_once(benchmark, _run)

    rows = [(name, round(s["elapsed_ms"], 2), s["upgrades"], s["snooped"],
             s["dirty_bytes"]) for name, s in result.items()]
    write_report("ablation_protocols", render_table(
        ["protocol", "elapsed ms", "upgrades seen", "lines snooped",
         "dirty bytes"], rows,
        title="Ablation: protocol family vs tracking timeliness"))

    pages = REGION // u.PAGE_4K
    mesi, msi, moesi = (result["mesi"], result["msi-eager"],
                        result["moesi"])
    # Every variant conserves the dirty data exactly.
    for s in result.values():
        assert s["dirty_bytes"] == pages * u.CACHE_LINE
    # MSI: the read-then-write per page surfaces as an explicit
    # upgrade for every page; MESI/MOESI upgrade silently.
    assert msi["upgrades"] == pages
    assert mesi["upgrades"] == 0
    assert moesi["upgrades"] == 0
    # Eager knowledge does not reduce snooping: the dirty *data* is in
    # the CPU caches either way and must be pulled at eviction.
    assert msi["snooped"] == mesi["snooped"]
    # The MSI upgrade messages cost (a little) critical-path time.
    assert msi["elapsed_ms"] >= mesi["elapsed_ms"] * 0.999
