"""Multi-tenant pooling: the paper's §1 provisioning argument, measured.

Monolithic provisioning sizes every server for its own peak; a pool
sizes the rack for the peak of the *sum*.  With phase-shifted tenants,
peak-of-sum is well below sum-of-peaks — that difference is the memory
disaggregation buys back.  This benchmark composes three workloads
whose activity drifts out of phase and measures both quantities, plus
per-tenant amplification integrity under co-location.
"""

import numpy as np
import pytest

from conftest import run_once, write_report
import repro.common.units as u
from repro.analysis import TABLE2, render_table
from repro.tools.pintool import analyze
from repro.workloads import (
    interleave,
    page_rank,
    per_tenant_slice,
    redis_rand,
    voltdb_tpcc,
)

WINDOWS = 6


def _per_window_demand(trace):
    """Dirty lines per window — active memory demand (drift-sensitive)."""
    report = analyze(trace)
    demand = {w.window: w.dirty_lines for w in report.windows}
    return [demand.get(w, 0) for w in range(WINDOWS)]


def _phase_shift(model, shift):
    """Rotate a tenant's activity cycle: real tenants don't synchronize."""
    drift = model.window_drift
    model.window_drift = drift[shift % len(drift):] + drift[:shift % len(drift)]
    return model


def _run():
    tenants = [
        _phase_shift(redis_rand(startup_windows=0), 0),
        _phase_shift(voltdb_tpcc(), 2),
        _phase_shift(page_rank(), 4),
    ]
    mixed, placements = interleave(tenants, windows=WINDOWS, seed=8)

    per_tenant = {}
    demands = {}
    for model, placement in zip(tenants, placements):
        tenant_trace = per_tenant_slice(mixed, placement)
        demands[model.name] = _per_window_demand(tenant_trace)
        amp = analyze(tenant_trace).mean_amplification(
            skip_first=model.startup_windows, skip_last=1)
        per_tenant[model.name] = amp["4k"]

    sum_of_peaks = sum(max(series) for series in demands.values())
    total_series = [sum(demands[name][w] for name in demands)
                    for w in range(WINDOWS)]
    peak_of_sum = max(total_series)
    return {
        "per_tenant_amp": per_tenant,
        "sum_of_peaks": sum_of_peaks,
        "peak_of_sum": peak_of_sum,
        "savings": 1.0 - peak_of_sum / sum_of_peaks,
    }


@pytest.mark.benchmark(group="multitenant")
def test_multitenant_pooling(benchmark):
    result = run_once(benchmark, _run)

    rows = [(name, round(amp, 2), TABLE2[name].amp_4k)
            for name, amp in result["per_tenant_amp"].items()]
    text = render_table(["tenant", "amp 4KB (co-located)", "paper (solo)"],
                        rows, title="Multi-tenant: per-tenant integrity")
    text += (f"\n\nsum of per-tenant peaks: {result['sum_of_peaks']} pages"
             f"\npeak of summed demand:   {result['peak_of_sum']} pages"
             f"\nprovisioning saved by pooling: {result['savings']:.0%}")
    write_report("multitenant_pooling", text)

    # Co-location does not distort any tenant's Table 2 signature.
    for name, amp in result["per_tenant_amp"].items():
        ref = TABLE2[name].amp_4k
        assert abs(amp - ref) / ref < 0.35, name
    # Statistical multiplexing: the pool needs less than the sum of
    # individual peaks (the §1 utilization argument).
    assert result["peak_of_sum"] < result["sum_of_peaks"]
    assert result["savings"] > 0.05
