"""Ablation: huge pages — decoupling tracking from translation (paper §3).

The paper's design principle: "Decouple data movement size from the
virtual memory page size."  Applications want 2 MB pages for TLB reach,
but page-based remote memory then moves and tracks 2 MB at a time
(Table 2 shows amplification up to 5516X).  Kona keeps translating at
whatever page size the app uses while tracking and moving 64 B lines.

This benchmark runs the one-line-per-page write pattern at 2 MB page
granularity through both systems and compares bytes moved and fetch
stalls.
"""

import numpy as np
import pytest

from conftest import run_once, write_report
import repro.common.units as u
from repro.analysis import render_table
from repro.kona import KonaConfig, KonaRuntime
from repro.vm.faults import FaultPath
from repro.vm.swap import PagedConfig, PagedRemoteMemory

HUGE_REGIONS = 16   # 16 x 2 MB = 32 MB working set


def _run():
    region_bytes = HUGE_REGIONS * u.PAGE_2M

    # Kona: the app uses 2 MB translations, but the data path still
    # fetches 4 KB blocks and tracks 64 B lines.
    config = KonaConfig(fmem_capacity=16 * u.MB,
                        vfmem_capacity=2 * region_bytes,
                        slab_bytes=32 * u.MB,
                        page_size=u.PAGE_4K)   # FMem blocks stay 4 KB
    kona = KonaRuntime(config)
    region = kona.mmap(region_bytes)
    stall = 0.0
    for i in range(HUGE_REGIONS):
        stall += kona.write(region.start + i * u.PAGE_2M)
    kona.flush()

    # Kona-VM configured with 2 MB pages: every miss moves 2 MB, every
    # dirtied region writes 2 MB back.
    vm = PagedRemoteMemory(PagedConfig(
        name="kona-vm-2m", fault_path=FaultPath.USERFAULTFD,
        local_capacity=region_bytes // 2, page_size=u.PAGE_2M))
    addrs = (np.arange(HUGE_REGIONS, dtype=np.uint64)
             * np.uint64(u.PAGE_2M))
    writes = np.ones(HUGE_REGIONS, dtype=bool)
    vm_report = vm.run(addrs, writes)
    vm.flush_dirty()

    app_written = HUGE_REGIONS * u.CACHE_LINE
    return {
        "kona": {
            "stall_ns": stall,
            "written_back": kona.eviction.stats.dirty_bytes,
            "amplification": kona.eviction.stats.dirty_bytes / app_written,
        },
        "kona-vm-2m": {
            "stall_ns": vm_report.elapsed_ns,
            "written_back": vm.bytes_written_back,
            "amplification": vm.bytes_written_back / app_written,
        },
    }


@pytest.mark.benchmark(group="ablations")
def test_ablation_hugepage_decoupling(benchmark):
    result = run_once(benchmark, _run)

    rows = [(name, round(s["stall_ns"] / 1000, 1), s["written_back"],
             round(s["amplification"], 1))
            for name, s in result.items()]
    write_report("ablation_hugepages", render_table(
        ["system", "stall us", "bytes written back", "amplification"],
        rows, title="Ablation: 2 MB pages — tracking decoupled (Kona) "
                    "vs coupled (Kona-VM)"))

    kona = result["kona"]
    vm = result["kona-vm-2m"]
    # Kona's amplification is granularity-invariant (one line per
    # dirtied region -> 1X); the page-based system ships whole 2 MB
    # regions (32768X on this pattern; Table 2 saw up to 5516X on real
    # apps).
    assert kona["amplification"] == pytest.approx(1.0)
    assert vm["amplification"] == pytest.approx(u.PAGE_2M / u.CACHE_LINE)
    # And the 2 MB fetches crush the fault path's latency too.
    assert vm["stall_ns"] > 10 * kona["stall_ns"]
