"""Figure 11(b): eviction goodput, alternate (random) dirty lines.

Kona's CL log keeps a 2-3X advantage for 2-4 discontiguous lines and
only loses to page writes beyond ~16 discontiguous dirty lines; the
ideal per-line writes collapse much earlier (many small WRs).
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import paper, render_table
from repro.experiments import run_fig11


@pytest.mark.benchmark(group="fig11")
def test_fig11b_alternate_goodput(benchmark):
    result = run_once(benchmark, run_fig11, pattern="alternate")

    strategies = sorted(result.relative_goodput)
    rows = [(n, *(round(v, 2) for v in vals))
            for n, *vals in result.rows()]
    text = render_table(["dirty lines", *strategies], rows,
                        title="Figure 11b: goodput relative to Kona-VM "
                              "(alternate)")
    write_report("fig11b_goodput_alternate", text)

    kona = dict(result.series("kona-cl-log"))
    for n in (2, 4):
        assert paper.within(kona[n], paper.FIG11B_ALT_2_4), n
    # Loses only past 16 discontiguous lines.
    assert kona[16] >= 0.85
    assert kona[32] < 1.0

    ideal_cl = dict(result.series("ideal-cl-nocopy"))
    # Per-line writes collapse before the CL log does.
    assert ideal_cl[16] < kona[16]
    assert ideal_cl[32] < kona[32]
