"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
asserts the paper's qualitative bands, and writes the rendered rows or
series to ``benchmarks/out/<name>.txt`` so the regenerated artifacts
survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def write_report(name: str, text: str) -> Path:
    """Persist a rendered table/series for one experiment."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def run_once(benchmark, func, *args, **kwargs):
    """Time one full experiment run (no repetition: these are long)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
