"""Ablation: the CXL-era projection (paper sections 2.3 and 7).

The paper bets on CXL platforms making coherence-based remote memory
deployable.  This ablation re-prices the Figure 8 AMAT study under a
CXL 2.0-class latency profile: pooled-memory access at ~750 ns and a
hardened directory.  The question is whether the paper's argument
*survives* better hardware — i.e. the fault-driven baselines stay
behind even when the wire gets fast, because their costs are software.
"""

import pytest

from conftest import run_once, write_report
import repro.common.units as u
from repro.analysis import render_table
from repro.common.latency import DEFAULT_LATENCY, cxl_latency
from repro.tools.kcachesim import KCacheSim
from repro.workloads.amat import redis_rand_spec


def _run():
    spec = redis_rand_spec(data_bytes=16 * u.MB)
    out = {}
    for name, latency in (("rdma", DEFAULT_LATENCY), ("cxl", cxl_latency())):
        sim = KCacheSim(spec, latency)
        run = sim.run(0.25, num_ops=30_000)
        out[name] = {
            "kona": run.amat_ns("kona"),
            "kona-main": run.amat_ns("kona-main"),
            "legoos": run.amat_ns("legoos"),
            "infiniswap": run.amat_ns("infiniswap"),
        }
    return out


@pytest.mark.benchmark(group="ablations")
def test_ablation_cxl_projection(benchmark):
    result = run_once(benchmark, _run)

    systems = ("kona", "kona-main", "legoos", "infiniswap")
    rows = [(era, *(round(result[era][s], 2) for s in systems))
            for era in ("rdma", "cxl")]
    write_report("ablation_cxl", render_table(
        ["era", *systems], rows,
        title="Ablation: Redis-Rand AMAT (ns) @25% cache, RDMA vs CXL era"))

    rdma, cxl = result["rdma"], result["cxl"]
    # Kona rides the faster fabric...
    for system in ("kona", "kona-main"):
        assert cxl[system] < rdma[system], system
    # ...while the baselines barely move: their measured latencies are
    # dominated by the software fault path, not the wire.
    for system in ("legoos", "infiniswap"):
        assert cxl[system] <= rdma[system] * 1.001, system
    # The baselines' fault costs are software: LegoOS and
    # Infiniswap keep their measured fault-inclusive latencies, so
    # Kona's relative advantage *grows* in the CXL era.
    rdma_gap = rdma["legoos"] / rdma["kona"]
    cxl_gap = cxl["legoos"] / cxl["kona"]
    assert cxl_gap > rdma_gap
    # The FMem NUMA penalty shrinks with the hardened directory.
    rdma_numa = rdma["kona"] / rdma["kona-main"]
    cxl_numa = cxl["kona"] / cxl["kona-main"]
    assert cxl_numa < rdma_numa
