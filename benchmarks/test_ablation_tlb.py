"""Ablation: translation overhead and page size (paper §3).

"As both application data and memory sizes are increasing, so are
translation overheads.  Therefore, it is natural for applications to
improve performance by using large pages" — but page-based remote
memory punishes huge pages with catastrophic amplification (Table 2's
2 MB column), while Kona decouples tracking from translation.

This ablation quantifies the *benefit* side: TLB miss ratios and the
resulting AMAT term at 4 KB vs 2 MB translations on a TLB-hostile
random workload.
"""

import pytest

from conftest import run_once, write_report
import repro.common.units as u
from repro.analysis import render_table
from repro.tools.kcachesim import KCacheSim
from repro.workloads.amat import redis_rand_spec


def _run():
    sim = KCacheSim(redis_rand_spec(data_bytes=32 * u.MB))
    out = {}
    for name, page in (("4KB", u.PAGE_4K), ("2MB", u.PAGE_2M)):
        result = sim.run(0.5, num_ops=30_000, tlb_page_size=page)
        out[name] = {
            "tlb_miss_ratio": result.tlb_miss_ratio,
            "kona_amat": result.amat_ns("kona"),
        }
    return out


@pytest.mark.benchmark(group="ablations")
def test_ablation_tlb_page_size(benchmark):
    result = run_once(benchmark, _run)

    rows = [(name, round(s["tlb_miss_ratio"], 4),
             round(s["kona_amat"], 2))
            for name, s in result.items()]
    write_report("ablation_tlb", render_table(
        ["page size", "TLB miss ratio (data)", "kona AMAT ns"], rows,
        title="Ablation: translation overhead vs page size"))

    small, huge = result["4KB"], result["2MB"]
    # 2 MB pages give the TLB ~512X the reach: misses collapse.
    assert huge["tlb_miss_ratio"] < small["tlb_miss_ratio"] / 20
    # The translation term is visible in the small-page AMAT.
    assert small["kona_amat"] > huge["kona_amat"]
    # And with Kona, taking the huge-page win costs nothing on the
    # dirty-data side (test_ablation_hugepages.py shows the page-based
    # system pays 32768X amplification for the same choice).
