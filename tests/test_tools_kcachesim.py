"""Tests for KCacheSim, the remote-fetch AMAT simulator."""

import pytest

import repro.common.units as u
from repro.common.errors import ConfigError
from repro.tools.kcachesim import KCacheSim, simulation_overhead
from repro.workloads.amat import (
    HotProfile,
    graph_coloring_spec,
    linear_regression_spec,
    redis_rand_spec,
)

OPS = 15_000


@pytest.fixture(scope="module")
def redis_results():
    sim = KCacheSim(redis_rand_spec(data_bytes=16 * u.MB))
    return {f: sim.run(f, num_ops=OPS) for f in (0.0, 0.25, 0.5, 1.0)}


class TestAmatShape:
    def test_amat_decreases_with_cache_size(self, redis_results):
        for system in ("kona", "legoos", "infiniswap"):
            amats = [redis_results[f].amat_ns(system)
                     for f in (0.0, 0.25, 0.5, 1.0)]
            assert amats == sorted(amats, reverse=True), system

    def test_kona_beats_legoos_at_small_cache(self, redis_results):
        result = redis_results[0.25]
        assert result.amat_ns("kona") < result.amat_ns("legoos")

    def test_systems_converge_with_full_cache(self, redis_results):
        # "For large cache sizes ... all systems perform similarly."
        result = redis_results[1.0]
        kona = result.amat_ns("kona")
        lego = result.amat_ns("legoos")
        assert lego / kona < 1.5

    def test_kona_main_lower_bound(self, redis_results):
        # Kona-main is Kona without the FMem NUMA penalty.
        result = redis_results[0.25]
        assert result.amat_ns("kona-main") < result.amat_ns("kona")

    def test_amat_is_tens_of_ns(self, redis_results):
        # The hot-access mix keeps AMAT in the tens of ns, as the
        # paper's Figure 8 y-axes show.
        for result in redis_results.values():
            for system in ("kona", "legoos"):
                assert 2.0 < result.amat_ns(system) < 120.0


class TestStreamingWorkload:
    def test_linear_regression_flat_amat(self):
        # Figure 8b: streaming has no reuse, so the AMAT curve is flat
        # across cache sizes (any nonzero cache already captures the
        # page-level spatial locality; more capacity buys nothing).
        sim = KCacheSim(linear_regression_spec(data_bytes=16 * u.MB))
        amats = [sim.run(f, num_ops=OPS).amat_ns("kona")
                 for f in (0.05, 0.25, 0.5, 1.0)]
        spread = (max(amats) - min(amats)) / max(amats)
        assert spread < 0.15

    def test_zipf_workload_benefits_from_cache(self):
        sim = KCacheSim(graph_coloring_spec(data_bytes=16 * u.MB))
        no_cache = sim.run(0.0, num_ops=OPS).amat_ns("kona")
        half = sim.run(0.5, num_ops=OPS).amat_ns("kona")
        assert half < no_cache


class TestBlockSizeSweep:
    def test_tiny_blocks_miss_spatial_locality(self):
        # Figure 8d: 64 B blocks can't exploit multi-line operations.
        sim = KCacheSim(redis_rand_spec(data_bytes=16 * u.MB))
        small = sim.run(0.5, block_size=64, num_ops=OPS).amat_ns("kona")
        page = sim.run(0.5, block_size=4096, num_ops=OPS).amat_ns("kona")
        assert small > page

    def test_huge_blocks_conflict(self):
        sim = KCacheSim(redis_rand_spec(data_bytes=16 * u.MB))
        page = sim.run(0.5, block_size=4096, num_ops=OPS).amat_ns("kona")
        huge = sim.run(0.5, block_size=32 * u.KB, num_ops=OPS).amat_ns("kona")
        assert huge > page

    def test_sweep_helper(self):
        sim = KCacheSim(redis_rand_spec(data_bytes=8 * u.MB))
        sweep = sim.sweep_block_size([1024, 4096], cache_fraction=0.5,
                                     num_ops=5000)
        assert set(sweep) == {1024, 4096}


class TestPlumbing:
    def test_invalid_fraction_rejected(self):
        sim = KCacheSim(redis_rand_spec())
        with pytest.raises(ConfigError):
            sim.run(1.5)

    def test_zero_cache_has_no_dram_level(self):
        sim = KCacheSim(redis_rand_spec(data_bytes=8 * u.MB))
        result = sim.run(0.0, num_ops=2000)
        assert result.hierarchy.dram_cache_name is None

    def test_amat_all_systems(self):
        sim = KCacheSim(redis_rand_spec(data_bytes=8 * u.MB))
        result = sim.run(0.5, num_ops=2000)
        amats = result.amat_all_systems()
        assert {"kona", "kona-main", "legoos", "infiniswap",
                "kona-vm"} <= set(amats)

    def test_hot_profile_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            HotProfile(l1=0.9, l2=0.2, l3=0.0, mem=0.0)


@pytest.mark.slow
class TestSimulationOverhead:
    def test_simulator_is_much_slower_than_native(self):
        # Section 6.2(3): Redis runs 43X slower under KCacheSim.  Any
        # honest software cache simulator is orders of magnitude slower
        # than native replay; assert the direction and magnitude.
        slowdown = simulation_overhead(redis_rand_spec(data_bytes=8 * u.MB),
                                       num_ops=10_000)
        assert slowdown > 20.0


class TestTLBTerm:
    def test_tlb_simulation_optional(self):
        sim = KCacheSim(redis_rand_spec(data_bytes=8 * u.MB))
        plain = sim.run(0.5, num_ops=4000)
        assert plain.tlb_miss_ratio == 0.0

    def test_huge_pages_reduce_tlb_misses(self):
        sim = KCacheSim(redis_rand_spec(data_bytes=16 * u.MB))
        small = sim.run(0.5, num_ops=8000, tlb_page_size=u.PAGE_4K)
        huge = sim.run(0.5, num_ops=8000, tlb_page_size=u.PAGE_2M)
        assert huge.tlb_miss_ratio < small.tlb_miss_ratio
        assert small.amat_ns("kona") > huge.amat_ns("kona")
