"""Differential tests: the vectorized engine vs the scalar oracle.

The vectorized kernel's contract is bit-identical behavior with the
scalar :class:`SetAssociativeCache` for LRU and FIFO: same per-level
hits, misses, evictions, dirty writebacks and the same miss stream on
any trace.  These tests drive both engines with identical traces over
a grid of geometries (associativity, block size, policy) and through
the full hierarchy (remote fetch/writeback accounting included), plus
a hypothesis-driven random search for counterexamples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.common.units as u
from repro.cache.hierarchy import CacheHierarchy, LevelSpec, dram_cache_spec
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.vectorized import VectorizedCache


def level_counters(cache):
    s = cache.stats
    return (s.hits, s.misses, s.evictions, s.dirty_writebacks)


def drive_pair(capacity, block, ways, policy, addrs, writes, splits=1):
    """Run the same trace through both engines; assert identical state."""
    scalar = SetAssociativeCache("s", capacity, block, ways, policy)
    vector = VectorizedCache("v", capacity, block, ways, policy)
    n = len(addrs)
    cuts = np.linspace(0, n, splits + 1).astype(int)
    for i in range(splits):
        chunk_a = addrs[cuts[i]:cuts[i + 1]]
        chunk_w = writes[cuts[i]:cuts[i + 1]]
        scalar_miss = [not scalar.access(a, w)[0]
                       for a, w in zip(chunk_a.tolist(), chunk_w.tolist())]
        vector_miss = vector.simulate_batch(chunk_a, chunk_w)
        assert scalar_miss == list(vector_miss)
    assert level_counters(scalar) == level_counters(vector)
    assert scalar.occupancy == vector.occupancy
    assert scalar.resident_blocks() == vector.resident_blocks()
    for blk in scalar.resident_blocks():
        assert scalar.is_dirty(blk) == vector.is_dirty(blk)


GEOMETRIES = [
    # (capacity, block, ways) — 8/16-way at cache-line and page blocks.
    (32 * u.KB, 64, 8),
    (64 * u.KB, 64, 16),
    (256 * u.KB, u.PAGE_4K, 8),
    (512 * u.KB, u.PAGE_4K, 16),
    (2 * 64, 64, 2),          # single set: maximal rank depth
]


@pytest.mark.parametrize("capacity,block,ways", GEOMETRIES)
@pytest.mark.parametrize("policy", ["lru", "fifo"])
class TestSingleLevelGeometryGrid:
    def test_uniform_trace(self, capacity, block, ways, policy):
        rng = np.random.default_rng(11)
        addrs = rng.integers(0, 4 * capacity, 6000, dtype=np.uint64)
        writes = rng.random(6000) < 0.4
        drive_pair(capacity, block, ways, policy, addrs, writes, splits=3)

    def test_mixed_trace_with_runs(self, capacity, block, ways, policy):
        """Sequential runs + hot reuse + cold uniform, interleaved."""
        rng = np.random.default_rng(13)
        seq = (np.arange(2000, dtype=np.uint64) * (block // 2))
        hot = rng.integers(0, capacity // 4, 2000, dtype=np.uint64)
        cold = rng.integers(0, 16 * capacity, 2000, dtype=np.uint64)
        addrs = np.empty(6000, dtype=np.uint64)
        addrs[0::3], addrs[1::3], addrs[2::3] = seq, hot, cold
        writes = rng.random(6000) < 0.5
        drive_pair(capacity, block, ways, policy, addrs, writes, splits=4)


class TestHierarchyDifferential:
    LEVELS = (
        LevelSpec("L1", 4 * u.KB, 64, 8),
        LevelSpec("L2", 32 * u.KB, 64, 16),
        LevelSpec("L3", 128 * u.KB, 64, 16),
    )

    def build_pair(self, dram_capacity, policy="lru"):
        levels = tuple(LevelSpec(s.name, s.capacity, s.block_size, s.ways,
                                 policy) for s in self.LEVELS)
        dram = (dram_cache_spec(dram_capacity, u.PAGE_4K, 4, policy)
                if dram_capacity else None)
        return (CacheHierarchy(levels, dram_cache=dram, engine="scalar"),
                CacheHierarchy(levels, dram_cache=dram, engine="vectorized"))

    def assert_identical(self, hs, hv):
        assert hs.result() == hv.result()
        scalar_levels = list(hs.levels) + (
            [hs.dram_cache] if hs.dram_cache else [])
        vector_levels = list(hv.levels) + (
            [hv.dram_cache] if hv.dram_cache else [])
        for ls, lv in zip(scalar_levels, vector_levels):
            assert level_counters(ls) == level_counters(lv), ls.name
        assert (hs.result().served_fractions()
                == hv.result().served_fractions())

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_full_hierarchy_with_dram_cache(self, policy):
        hs, hv = self.build_pair(512 * u.KB, policy)
        rng = np.random.default_rng(17)
        addrs = rng.integers(0, 2 * u.MB, 20_000, dtype=np.uint64)
        writes = rng.random(20_000) < 0.4
        for lo in range(0, 20_000, 5000):
            rs = hs.simulate(addrs[lo:lo + 5000], writes[lo:lo + 5000])
            rv = hv.simulate(addrs[lo:lo + 5000], writes[lo:lo + 5000])
            assert rs == rv
        self.assert_identical(hs, hv)

    def test_no_dram_cache_remote_accounting(self):
        hs, hv = self.build_pair(None)
        rng = np.random.default_rng(19)
        addrs = rng.integers(0, 2 * u.MB, 10_000, dtype=np.uint64)
        writes = rng.random(10_000) < 0.3
        assert hs.simulate(addrs, writes) == hv.simulate(addrs, writes)
        self.assert_identical(hs, hv)
        assert hv.remote_fetches > 0

    def test_interleaved_access_and_simulate(self):
        hs, hv = self.build_pair(512 * u.KB)
        rng = np.random.default_rng(23)
        addrs = rng.integers(0, 2 * u.MB, 9000, dtype=np.uint64)
        writes = rng.random(9000) < 0.5
        for lo in range(0, 9000, 3000):
            assert (hs.simulate(addrs[lo:lo + 3000], writes[lo:lo + 3000])
                    == hv.simulate(addrs[lo:lo + 3000], writes[lo:lo + 3000]))
            for a, w in zip(addrs[:64].tolist(), writes[:64].tolist()):
                assert hs.access(a, w) == hv.access(a, w)
        self.assert_identical(hs, hv)


class TestHypothesisSearch:
    """Random-trace counterexample search over a tiny cache.

    A small geometry maximizes evictions, rank depth and replacement
    pressure per generated access, which is where a vectorization bug
    would show up.
    """

    traces = st.lists(
        st.tuples(st.integers(min_value=0, max_value=1023),
                  st.booleans()),
        min_size=1, max_size=200)

    @settings(max_examples=60, deadline=None)
    @given(trace=traces, policy=st.sampled_from(["lru", "fifo"]))
    def test_any_trace_matches_oracle(self, trace, policy):
        addrs = np.array([a * 16 for a, _ in trace], dtype=np.uint64)
        writes = np.array([w for _, w in trace], dtype=bool)
        drive_pair(4 * 64, 64, 4, policy, addrs, writes,
                   splits=min(3, len(trace)))
