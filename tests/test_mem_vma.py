"""Tests for VMA management."""

import pytest

import repro.common.units as u
from repro.common.errors import AddressError, ConfigError
from repro.mem.address import AddressRange
from repro.mem.pagetable import Protection
from repro.mem.vma import VMA, VMAMap


def vma(start, size, **kwargs):
    return VMA(AddressRange(start, size), **kwargs)


class TestLookup:
    def test_find(self):
        m = VMAMap()
        m.insert(vma(0, 4096))
        m.insert(vma(8192, 4096))
        assert m.find(100).range.start == 0
        assert m.find(8192).range.start == 8192
        assert m.find(5000) is None

    def test_find_cost_grows_with_population(self):
        small, big = VMAMap(), VMAMap()
        small.insert(vma(0, 4096))
        for i in range(64):
            big.insert(vma(i * 8192, 4096))
        assert big.find_cost_ns() > small.find_cost_ns()


class TestMutation:
    def test_overlap_rejected(self):
        m = VMAMap()
        m.insert(vma(0, 8192))
        with pytest.raises(AddressError):
            m.insert(vma(4096, 8192))

    def test_remove(self):
        m = VMAMap()
        m.insert(vma(0, 4096))
        removed = m.remove(100)
        assert removed.range.start == 0
        assert m.find(100) is None

    def test_remove_missing_rejected(self):
        with pytest.raises(AddressError):
            VMAMap().remove(0)

    def test_split(self):
        m = VMAMap()
        m.insert(vma(0, 16384, name="heap"))
        left, right = m.split(8192)
        assert left.range.size == 8192
        assert right.range.start == 8192
        assert len(m) == 2
        assert m.find(0).name == "heap"

    def test_split_at_start_is_noop(self):
        m = VMAMap()
        m.insert(vma(0, 8192))
        (only,) = m.split(0)
        assert len(m) == 1

    def test_split_unaligned_rejected(self):
        m = VMAMap()
        m.insert(vma(0, 8192))
        with pytest.raises(ConfigError):
            m.split(100)

    def test_merge_adjacent(self):
        m = VMAMap()
        m.insert(vma(0, 16384, name="heap"))
        m.split(8192)
        assert m.merge_adjacent() == 1
        assert len(m) == 1
        assert m.find(0).range.size == 16384

    def test_merge_respects_attributes(self):
        m = VMAMap()
        m.insert(vma(0, 4096, protection=Protection.READ))
        m.insert(vma(4096, 4096, protection=Protection.READ_WRITE))
        assert m.merge_adjacent() == 0


class TestGapSearch:
    def test_finds_first_gap(self):
        m = VMAMap()
        m.insert(vma(0, 4096))
        m.insert(vma(12288, 4096))
        assert m.find_gap(4096) == 4096
        assert m.find_gap(8192) == 4096
        assert m.find_gap(16384) == 16384

    def test_floor_respected(self):
        m = VMAMap()
        assert m.find_gap(4096, floor=10000) == 12288

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            VMAMap().find_gap(0)


class TestRemoteAccounting:
    def test_remote_bytes(self):
        m = VMAMap()
        m.insert(vma(0, 4096, remote=True))
        m.insert(vma(8192, 4096, remote=False))
        assert m.remote_bytes() == 4096


class TestAllocLibIntegration:
    def test_mmap_registers_remote_vma(self, small_config):
        from repro.kona import KonaRuntime
        rt = KonaRuntime(small_config)
        region = rt.mmap(1 * u.MB)
        found = rt.alloclib.vmas.find(region.start)
        assert found is not None and found.remote
        assert rt.alloclib.vmas.remote_bytes() >= 1 * u.MB
