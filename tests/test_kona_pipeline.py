"""Tests for the DES eviction pipeline."""

import pytest

import repro.common.units as u
from repro.baselines.eviction_strategies import kona_cl_log
from repro.common.errors import ConfigError
from repro.kona.pipeline import EvictionPipeline


class TestPipelineMechanics:
    def test_conserves_records(self):
        pipe = EvictionPipeline(batch_bytes=8 * 72)
        result = pipe.run(64, 4)
        assert result.batches * 8 >= 64 * 4        # all records shipped
        assert result.elapsed_ns > 0

    def test_busy_times_bounded_by_elapsed(self):
        pipe = EvictionPipeline()
        result = pipe.run(1024, 8)
        # No serial stage can be busier than the wall clock.
        assert result.producer_busy_ns <= result.elapsed_ns * 1.001
        assert result.receiver_busy_ns <= result.elapsed_ns * 1.001

    def test_goodput_positive(self):
        result = EvictionPipeline().run(256, 2)
        assert result.goodput_bytes_per_s() > 0

    def test_invalid_inputs_rejected(self):
        pipe = EvictionPipeline()
        with pytest.raises(ConfigError):
            pipe.run(0, 1)
        with pytest.raises(ConfigError):
            pipe.run(10, 65)
        with pytest.raises(ConfigError):
            EvictionPipeline(batch_bytes=10)
        with pytest.raises(ConfigError):
            EvictionPipeline(ring_batches=0)


class TestBottleneckTransition:
    def test_producer_bound_at_low_density(self):
        result = EvictionPipeline().run(2048, 1)
        assert result.bottleneck == "producer"

    def test_receiver_bound_at_high_density(self):
        result = EvictionPipeline().run(2048, 32)
        assert result.bottleneck == "receiver"

    def test_elapsed_grows_with_density(self):
        pipe = EvictionPipeline()
        times = [pipe.run(1024, n).elapsed_ns for n in (1, 8, 32)]
        assert times == sorted(times)


class TestClosedFormAgreement:
    """The Figure 11 closed-form model must track the DES ground truth."""

    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32, 55])
    def test_within_30_percent(self, n):
        des = EvictionPipeline().run(2048, n)
        closed = kona_cl_log(2048, n)
        ratio = closed.total_ns / des.elapsed_ns
        # The closed form may be conservative (slower) but never
        # optimistic by more than a few percent.
        assert 0.95 <= ratio <= 1.35, (n, ratio)

    def test_receiver_bound_region_matches_closely(self):
        # Where flow control dominates, both models are receiver-rate
        # limited and must agree tightly.
        for n in (32, 55):
            des = EvictionPipeline().run(2048, n)
            closed = kona_cl_log(2048, n)
            assert closed.total_ns == pytest.approx(des.elapsed_ns, rel=0.1)

    def test_smaller_ring_cannot_be_faster(self):
        deep = EvictionPipeline(ring_batches=8).run(2048, 8)
        shallow = EvictionPipeline(ring_batches=1).run(2048, 8)
        assert shallow.elapsed_ns >= deep.elapsed_ns * 0.999
