"""Tests for the assembled Kona runtime (KLib facade)."""

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import AddressError, NodeFailure
from repro.kona import FallbackMode, KonaConfig, KonaRuntime, MachineCheckException
from repro.workloads.synthetic import one_line_per_page


def make_runtime(**config_kwargs):
    defaults = dict(fmem_capacity=4 * u.MB, vfmem_capacity=64 * u.MB,
                    slab_bytes=16 * u.MB)
    defaults.update(config_kwargs)
    return KonaRuntime(KonaConfig(**defaults), app_ns_per_access=50.0)


class TestAllocationPath:
    def test_malloc_in_vfmem(self):
        rt = make_runtime()
        addr = rt.malloc(256)
        assert addr in rt.vfmem

    def test_mmap_and_free(self):
        rt = make_runtime()
        region = rt.mmap(1 * u.MB)
        assert rt.vfmem.contains_range(region)
        addr = rt.malloc(64)
        rt.free(addr)


class TestDataPath:
    def test_no_page_faults_ever(self):
        # The core claim: Kona's data path never touches the page
        # tables after setup.
        rt = make_runtime()
        region = rt.mmap(8 * u.MB)
        for i in range(0, 64 * u.PAGE_4K, u.PAGE_4K):
            rt.write(region.start + i)
        assert rt.page_table.counters["faults_missing"] == 0
        assert rt.page_table.counters["faults_protection"] == 0

    def test_first_access_pays_remote_fetch(self):
        rt = make_runtime()
        region = rt.mmap(1 * u.MB)
        cost = rt.read(region.start)
        assert cost >= rt.latency.rdma_base_ns

    def test_cached_access_is_free(self):
        rt = make_runtime()
        region = rt.mmap(1 * u.MB)
        rt.read(region.start)
        assert rt.read(region.start) == 0.0    # CPU cache hit

    def test_fmem_spatial_locality(self):
        rt = make_runtime()
        region = rt.mmap(1 * u.MB)
        rt.read(region.start)
        # A different line of the same page: FMem hit, not remote.
        cost = rt.read(region.start + 2048)
        assert cost == pytest.approx(rt.latency.fmem_ns)

    def test_writes_tracked_at_line_granularity(self):
        rt = make_runtime()
        region = rt.mmap(1 * u.MB)
        rt.write(region.start, 64)
        rt.write(region.start + 4 * u.CACHE_LINE, 64)
        rt.flush()
        assert rt.eviction.stats.dirty_bytes == 2 * u.CACHE_LINE

    def test_span_access_touches_all_lines(self):
        rt = make_runtime()
        region = rt.mmap(1 * u.MB)
        rt.write(region.start, 3 * u.CACHE_LINE)
        rt.flush()
        assert rt.eviction.stats.dirty_bytes == 3 * u.CACHE_LINE

    def test_unmanaged_address_rejected(self):
        rt = make_runtime()
        with pytest.raises(AddressError):
            rt.read(123)


class TestEvictionIntegration:
    def test_fmem_pressure_triggers_eviction(self):
        rt = make_runtime(fmem_capacity=4 * u.MB)
        region = rt.mmap(32 * u.MB)
        streams = one_line_per_page(16 * u.MB, base=region.start)
        addrs, writes = streams[0]
        rt.run_trace(addrs, writes)
        assert rt.eviction.stats.pages_evicted > 0
        # Only dirty lines travel, not whole pages.
        dirty_pages = (rt.eviction.stats.pages_evicted
                       - rt.eviction.stats.clean_pages)
        assert rt.eviction.stats.dirty_bytes <= dirty_pages * 2 * u.CACHE_LINE

    def test_dirty_data_conservation(self):
        # Every written line is eventually written back, exactly once.
        rt = make_runtime()
        region = rt.mmap(16 * u.MB)
        pages = 512
        for i in range(pages):
            rt.write(region.start + i * u.PAGE_4K)
        rt.flush()
        assert rt.eviction.stats.dirty_bytes == pages * u.CACHE_LINE
        assert rt.agent.bitmap.total_dirty_lines() == 0
        assert rt.eviction.pending_records == 0

    def test_eviction_is_background(self):
        rt = make_runtime(fmem_capacity=4 * u.MB)
        region = rt.mmap(32 * u.MB)
        addrs, writes = one_line_per_page(8 * u.MB, base=region.start)[0]
        report = rt.run_trace(addrs, writes)
        assert report.background_ns > 0
        assert "evict" not in {name for name, _ in report.account
                               if name.startswith("evict")} or True


class TestFailures:
    def test_replica_failover(self):
        cfg = dict(replication_factor=2)
        rt = make_runtime(**cfg)
        region = rt.mmap(1 * u.MB)
        rt.read(region.start)
        # Kill the primary; Kona reads from the replica.
        primary = rt.translation.resolve(region.start).node
        rt.controller.node(primary).fail()
        cost = rt.read(region.start + 8 * u.PAGE_4K)
        assert cost > 0
        assert rt.counters["replica_reads"] > 0

    def test_no_replica_degrades_to_fault_mode(self):
        rt = make_runtime()
        region = rt.mmap(1 * u.MB)
        primary = rt.translation.resolve(region.start).node
        rt.controller.node(primary).fail()
        with pytest.raises(NodeFailure):
            rt.read(region.start)
        # The page was degraded so software can handle the outage.
        vpn = rt.page_table.vpn_of(region.start)
        assert not rt.page_table.entry(vpn).present
        # After recovery the page is re-armed.
        rt.controller.node(primary).recover()
        assert rt.failures.recover_degraded() >= 1
        assert rt.page_table.entry(vpn).present

    def test_failed_fetch_does_not_pollute_fmem(self):
        # A fetch that dies on a dead node must not leave a dataless
        # page resident in FMem; after recovery the read must pay the
        # full remote fetch.
        rt = make_runtime()
        region = rt.mmap(1 * u.MB)
        primary = rt.translation.resolve(region.start).node
        rt.controller.node(primary).fail()
        with pytest.raises(NodeFailure):
            rt.read(region.start)
        assert not rt.fmem.lookup(region.start)
        rt.controller.node(primary).recover()
        rt.failures.recover_degraded()
        cost = rt.read(region.start)
        assert cost >= rt.latency.rdma_base_ns   # real remote fetch

    def test_mce_mode_raises(self):
        cfg = KonaConfig(fmem_capacity=4 * u.MB, vfmem_capacity=64 * u.MB,
                         slab_bytes=16 * u.MB)
        rt = KonaRuntime(cfg, failure_mode=FallbackMode.MCE_HANDLER)
        region = rt.mmap(1 * u.MB)
        primary = rt.translation.resolve(region.start).node
        rt.controller.node(primary).fail()
        with pytest.raises(MachineCheckException):
            rt.read(region.start)


class TestLifecycle:
    def test_context_manager_closes_cleanly(self):
        with make_runtime() as rt:
            region = rt.mmap(1 * u.MB)
            rt.write(region.start)
        assert rt.translation.bound_slots == 0

    def test_run_trace_report(self):
        rt = make_runtime()
        region = rt.mmap(4 * u.MB)
        addrs, writes = one_line_per_page(2 * u.MB, base=region.start)[0]
        report = rt.run_trace(addrs, writes)
        assert report.accesses == len(addrs)
        assert report.elapsed_ns > 0
        assert report.counters["cache_misses"] > 0

    def test_run_workload_convenience(self):
        from repro.workloads import redis_seq
        model = redis_seq(memory_bytes=16 * u.MB,
                          dirty_pages_per_window=60)
        rt = make_runtime()
        report = rt.run_workload(model, windows=2, max_accesses=3000)
        assert report.accesses == 3000
        assert report.name == "kona[redis-seq]"
        assert rt.page_table.counters["faults_missing"] == 0

    def test_watermark_reclaim_via_maybe_evict(self):
        rt = make_runtime(fmem_capacity=4 * u.MB,
                          evict_low_watermark=0.5,
                          evict_high_watermark=0.6)
        region = rt.mmap(8 * u.MB)
        # Fill FMem past the high watermark without run_trace's ticks.
        for i in range(900):
            rt.read(region.start + i * u.PAGE_4K)
        assert rt.fmem.occupancy_fraction > 0.6
        reclaimed = rt.maybe_evict()
        assert reclaimed > 0
        assert rt.fmem.occupancy_fraction <= 0.6
        assert rt.maybe_evict() == 0    # below the watermark: no-op
