"""Tests for the vectorized CPU coherent-cache front-end.

The ndarray mirror must be interconvertible with the ordered-dict
cache (import/export roundtrip) and behave identically under directory
traffic, including multi-agent invalidations and MOESI downgrades.
"""

import numpy as np
import pytest

import repro.common.units as u
from repro.coherence.agent import CoherentCache
from repro.coherence.directory import Directory
from repro.coherence.states import LineState, Protocol
from repro.coherence.vectorized import VectorizedCoherentCache
from repro.common.errors import CoherenceError
from repro.mem.address import AddressRange

HOME = AddressRange(0, 4 * u.MB)
CAPACITY = 16 * u.KB
WAYS = 2


def make_pair(protocol=Protocol.MESI):
    """A directory plus one scalar cache registered with it."""
    directory = Directory(HOME, protocol=protocol)
    resolver = lambda addr: directory  # noqa: E731
    cache = CoherentCache(1, resolver, capacity=CAPACITY, ways=WAYS,
                          protocol=protocol)
    cache.attach(directory)
    return directory, cache


def drive(cache, rng, ops, lines=1024):
    for _ in range(ops):
        addr = int(rng.integers(0, lines)) * u.CACHE_LINE
        cache.access(addr, bool(rng.random() < 0.4))


def set_contents(cache):
    return [list(s.items()) for s in cache._sets]


class TestRoundtrip:
    def test_import_export_identity(self):
        _, cache = make_pair()
        drive(cache, np.random.default_rng(0), 3000)
        before = set_contents(cache)
        vec = VectorizedCoherentCache.from_scalar(cache)
        vec.export_to(cache)
        assert set_contents(cache) == before
        assert vec.occupancy == sum(len(s) for s in cache._sets)

    def test_export_preserves_lru_order(self):
        _, cache = make_pair()
        # One set: touch three lines, re-touch the first so LRU order
        # is (b, a); the dict's insertion order must survive.
        stride = cache.num_sets * u.CACHE_LINE
        cache.access(0, False)
        cache.access(stride, False)
        cache.access(0, True)
        vec = VectorizedCoherentCache.from_scalar(cache)
        vec.export_to(cache)
        (keys,) = [list(s) for s in cache._sets if s]
        assert keys == [stride, 0]

    def test_empty_cache_roundtrip(self):
        _, cache = make_pair()
        vec = VectorizedCoherentCache.from_scalar(cache)
        vec.export_to(cache)
        assert all(not s for s in cache._sets)

    def test_geometry_mismatch_rejected(self):
        _, cache = make_pair()
        vec = VectorizedCoherentCache.from_scalar(cache)
        resolver = lambda addr: None  # noqa: E731
        other = CoherentCache(1, resolver, capacity=2 * CAPACITY, ways=WAYS)
        with pytest.raises(CoherenceError):
            vec.export_to(other)


class TestScalarParity:
    """front.access must be indistinguishable from CoherentCache.access."""

    @pytest.mark.parametrize("protocol", [Protocol.MESI, Protocol.MOESI])
    def test_single_agent_random_stream(self, protocol):
        _, scalar = make_pair(protocol)
        dir2, twin = make_pair(protocol)
        vec = VectorizedCoherentCache.from_scalar(twin)
        vec.attach(dir2)
        rng_a, rng_b = (np.random.default_rng(7) for _ in range(2))
        for _ in range(4000):
            addr = int(rng_a.integers(0, 2048)) * u.CACHE_LINE
            w = bool(rng_a.random() < 0.4)
            assert scalar.access(addr, w) == vec.access(
                int(rng_b.integers(0, 2048)) * u.CACHE_LINE,
                bool(rng_b.random() < 0.4))
        vec.export_to(twin)
        assert set_contents(twin) == set_contents(scalar)
        assert vec.counters.as_dict() == scalar.counters.as_dict()

    @pytest.mark.parametrize("protocol", [Protocol.MESI, Protocol.MOESI])
    def test_two_agents_share_and_snoop(self, protocol):
        # Reference world: two dict caches.  Mirror world: the first
        # agent runs on arrays, the second stays a dict cache.
        worlds = []
        for vectorize in (False, True):
            directory = Directory(HOME, protocol=protocol)
            resolver = lambda addr, d=directory: d  # noqa: E731
            a = CoherentCache(1, resolver, capacity=CAPACITY, ways=WAYS,
                              protocol=protocol)
            a.attach(directory)
            b = CoherentCache(2, resolver, capacity=CAPACITY, ways=WAYS,
                              protocol=protocol)
            b.attach(directory)
            if vectorize:
                front = VectorizedCoherentCache.from_scalar(a)
                front.attach(directory)
            else:
                front = a
            rng = np.random.default_rng(13)
            for _ in range(6000):
                agent = front if rng.random() < 0.5 else b
                addr = int(rng.integers(0, 512)) * u.CACHE_LINE
                agent.access(addr, bool(rng.random() < 0.5))
            if vectorize:
                front.export_to(a)
            worlds.append((set_contents(a), set_contents(b),
                           directory.counters.as_dict(),
                           a.counters.as_dict()))
        assert worlds[0] == worlds[1]


class TestMutationLog:
    def test_snoops_recorded_only_when_enabled(self):
        directory = Directory(HOME)
        resolver = lambda addr: directory  # noqa: E731
        a = CoherentCache(1, resolver, capacity=CAPACITY, ways=WAYS)
        a.attach(directory)
        a.access(0, True)           # MODIFIED in agent 1
        a.access(u.CACHE_LINE, False)
        front = VectorizedCoherentCache.from_scalar(a)
        front.attach(directory)
        b = CoherentCache(2, resolver, capacity=CAPACITY, ways=WAYS)
        b.attach(directory)
        b.access(0, True)           # invalidates agent 1's copy
        assert front.take_mutations() == []   # recording off by default
        front.record_mutations = True
        b.access(u.CACHE_LINE, True)
        log = front.take_mutations()
        assert len(log) == 1
        assert front.state_of(u.CACHE_LINE) is LineState.INVALID
        assert front.take_mutations() == []   # drained

    def test_moesi_downgrade_keeps_line_resident(self):
        directory = Directory(HOME, protocol=Protocol.MOESI)
        resolver = lambda addr: directory  # noqa: E731
        a = CoherentCache(1, resolver, capacity=CAPACITY, ways=WAYS,
                          protocol=Protocol.MOESI)
        a.attach(directory)
        a.access(0, True)
        front = VectorizedCoherentCache.from_scalar(a)
        front.attach(directory)
        b = CoherentCache(2, resolver, capacity=CAPACITY, ways=WAYS,
                          protocol=Protocol.MOESI)
        b.attach(directory)
        b.access(0, False)          # MOESI: owner demotes M -> O
        assert front.state_of(0) is LineState.OWNED
