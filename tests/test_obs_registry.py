"""Tests for the labeled metrics registry and histogram math."""

import math

import pytest

from repro.common.errors import ConfigError
from repro.obs import MetricsRegistry
from repro.obs.export import prometheus_text
from repro.obs.registry import HistogramMetric


class TestCountersAndGauges:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", "operations")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_decrement(self):
        c = MetricsRegistry().counter("ops")
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_gauge_set(self):
        g = MetricsRegistry().gauge("depth")
        g.set(17)
        assert g.value == 17

    def test_callback_gauge_reads_live(self):
        state = {"v": 1}
        g = MetricsRegistry().gauge("live", fn=lambda: state["v"])
        assert g.value == 1
        state["v"] = 9
        assert g.value == 9

    def test_callback_gauge_rejects_set(self):
        g = MetricsRegistry().gauge("live", fn=lambda: 0)
        with pytest.raises(ConfigError):
            g.set(3)

    def test_reregister_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("ops")
        a.inc(3)
        b = reg.counter("ops")
        assert b is a
        assert b.value == 3

    def test_reregister_different_kind_raises(self):
        reg = MetricsRegistry()
        reg.counter("ops")
        with pytest.raises(ConfigError):
            reg.gauge("ops")


class TestLabels:
    def test_labeled_children_are_distinct(self):
        reg = MetricsRegistry()
        fam = reg.counter("transfers", labels=("node",))
        fam.labels(node="mem0").inc(2)
        fam.labels(node="mem1").inc(5)
        assert fam.labels(node="mem0").value == 2
        assert fam.labels(node="mem1").value == 5

    def test_wrong_label_names_raise(self):
        fam = MetricsRegistry().counter("transfers", labels=("node",))
        with pytest.raises(ConfigError):
            fam.labels(link="a")

    def test_labeled_family_rejects_bare_inc(self):
        fam = MetricsRegistry().counter("transfers", labels=("node",))
        with pytest.raises(ConfigError):
            fam.inc()

    def test_samples_include_labels(self):
        reg = MetricsRegistry()
        reg.counter("transfers", labels=("node",)).labels(node="m0").inc()
        samples = reg.samples()
        assert ("transfers", (("node", "m0"),), 1) in samples


class TestSections:
    def test_sections_group_dotted_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("memory.fmem_bytes", fn=lambda: 42)
        reg.gauge("memory.vfmem_bytes", fn=lambda: 7)
        reg.gauge("health.state", fn=lambda: "HEALTHY")
        sections = reg.sections()
        assert sections == {"health": {"state": "HEALTHY"},
                            "memory": {"fmem_bytes": 42, "vfmem_bytes": 7}}

    def test_undotted_gauges_stay_out_of_sections(self):
        reg = MetricsRegistry()
        reg.gauge("loose")
        assert reg.sections() == {}


class TestHistogram:
    def test_empty_histogram_quantile_is_nan(self):
        h = HistogramMetric()
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.mean)

    def test_single_sample_is_exact(self):
        h = HistogramMetric()
        h.observe(137.0)
        # Clamping to [min, max] makes a one-sample histogram exact.
        assert h.p50 == 137.0
        assert h.p99 == 137.0
        assert h.mean == 137.0

    def test_quantile_orders(self):
        h = HistogramMetric()
        for v in [10.0] * 90 + [10_000.0] * 10:
            h.observe(v)
        assert h.p50 <= h.p95 <= h.p99
        assert h.p50 < 100.0          # the low mode
        assert h.p99 >= 4_096.0       # reaches the high mode's bucket

    def test_quantile_estimate_within_bucket(self):
        h = HistogramMetric()
        for v in (100.0, 110.0, 120.0, 130.0):
            h.observe(v)
        # All samples share the (64, 128] bucket: estimate must land
        # inside the observed range.
        assert 100.0 <= h.p50 <= 130.0

    def test_nonpositive_values_underflow_bucket(self):
        h = HistogramMetric()
        h.observe(0.0)
        h.observe(-5.0)
        h.observe(8.0)
        assert h.count == 3
        assert h.buckets()[0][0] == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ConfigError):
            HistogramMetric().quantile(1.5)

    def test_power_of_two_on_own_bound(self):
        # 64.0 must land in the bucket bounded by 64, not 128.
        assert HistogramMetric._bucket_of(64.0) == 6
        assert HistogramMetric._bucket_of(65.0) == 7


class TestPrometheusExport:
    def test_text_format_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("kona.fetches", "remote fetches").inc(3)
        reg.gauge("memory.occupancy", fn=lambda: 0.5)
        text = prometheus_text(reg)
        assert "kona_fetches_total 3" in text
        assert "memory_occupancy 0.5" in text

    def test_string_gauge_becomes_info(self):
        reg = MetricsRegistry()
        reg.gauge("health.state", fn=lambda: "HEALTHY")
        text = prometheus_text(reg)
        assert 'health_state_info{value="HEALTHY"} 1' in text

    def test_histogram_series(self):
        reg = MetricsRegistry()
        h = reg.histogram("stall_ns")
        h.observe(100.0)
        h.observe(200.0)
        text = prometheus_text(reg)
        assert 'stall_ns_bucket{le="+Inf"} 2' in text
        assert "stall_ns_sum 300" in text
        assert "stall_ns_count 2" in text
