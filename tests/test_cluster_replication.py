"""Tests for primary/backup replication: epochs, leases, failover."""

import pytest

import repro.common.units as u
from repro.cluster import (
    DataPlane,
    LineStore,
    ReplicaSet,
    StoredLine,
    line_checksum,
    line_payload,
)
from repro.kona import KonaConfig, KonaRuntime
from repro.net.ring import LogRecord


def _record(vfmem_addr, version, epoch=0, remote_addr=0):
    return LogRecord(remote_addr=remote_addr, vfmem_addr=vfmem_addr,
                     version=version, epoch=epoch,
                     payload=line_payload(vfmem_addr, version))


class TestContentModel:
    def test_payload_is_deterministic(self):
        assert line_payload(0x1000, 3) == line_payload(0x1000, 3)

    def test_payload_varies_with_line_and_version(self):
        assert line_payload(0x1000, 1) != line_payload(0x1040, 1)
        assert line_payload(0x1000, 1) != line_payload(0x1000, 2)

    def test_checksum_detects_any_flipped_bit(self):
        payload = line_payload(0x2000, 5)
        checksum = line_checksum(payload)
        for bit in (0, 17, 63):
            assert line_checksum(payload ^ (1 << bit)) != checksum


class TestLineStore:
    def test_apply_stores_line_with_checksum(self):
        store = LineStore()
        assert store.apply(_record(0x40, 1))
        stored = store.get(0x40)
        assert stored.version == 1 and stored.intact

    def test_stale_version_is_fenced(self):
        store = LineStore()
        store.apply(_record(0x40, 3))
        assert not store.apply(_record(0x40, 2))
        assert store.get(0x40).version == 3
        assert store.counters["stale_version_drops"] == 1

    def test_redelivery_of_same_version_is_idempotent(self):
        store = LineStore()
        store.apply(_record(0x40, 2))
        assert store.apply(_record(0x40, 2))
        assert store.image() == {0x40: (2, line_payload(0x40, 2))}

    def test_version_zero_records_are_dropped(self):
        # Full-page writes ship never-written lines; storing them would
        # make the image depend on the eviction strategy.
        store = LineStore()
        assert not store.apply(_record(0x40, 0))
        assert len(store) == 0

    def test_corrupt_flips_payload_but_not_checksum(self):
        store = LineStore()
        store.apply(_record(0x40, 1))
        assert store.corrupt(0x40)
        assert not store.get(0x40).intact

    def test_lines_in_page_uses_page_index(self):
        store = LineStore()
        store.apply(_record(0x40, 1))
        store.apply(_record(0x80, 1))
        store.apply(_record(u.PAGE_4K + 0x40, 1))
        assert store.lines_in_page(0) == [0x40, 0x80]
        assert store.lines_in_page(u.PAGE_4K) == [u.PAGE_4K + 0x40]

    def test_clear_drops_everything(self):
        store = LineStore()
        store.apply(_record(0x40, 1))
        store.clear()
        assert len(store) == 0 and store.lines_in_page(0) == []


class TestDataPlane:
    def test_versions_count_writes_per_line(self):
        plane = DataPlane()
        plane.record_write(0x100)
        plane.record_write(0x104)      # same cache line
        plane.record_write(0x140)      # next line
        assert plane.content(0x100)[0] == 2
        assert plane.content(0x140)[0] == 1

    def test_unwritten_line_is_version_zero(self):
        plane = DataPlane()
        assert plane.content(0x2000) == (0, line_payload(0x2000, 0))

    def test_acknowledge_keeps_highest_version(self):
        plane = DataPlane()
        plane.acknowledge([_record(0x40, 2)])
        plane.acknowledge([_record(0x40, 1), _record(0x80, 4)])
        assert plane.acknowledged == {0x40: 2, 0x80: 4}


class TestReplicaSet:
    _ids = iter(range(100, 200))

    def _slab(self, node):
        from repro.cluster.slab import Slab
        from repro.mem.address import AddressRange
        return Slab(slab_id=next(self._ids), node=node,
                    remote_range=AddressRange(0, 8 * u.MB))

    def test_promote_bumps_epoch_and_keeps_history(self):
        rset = ReplicaSet(slot=0, primary=self._slab("mem0"),
                          backups=[self._slab("mem1"), self._slab("mem2")])
        rset.promote(0)
        assert rset.primary.node == "mem1"
        assert rset.epoch == 1
        assert rset.epoch_history == [0, 1]
        assert rset.nodes() == ["mem1", "mem2"]


@pytest.fixture
def replicated_runtime():
    config = KonaConfig(fmem_capacity=4 * u.MB,
                        vfmem_capacity=48 * u.MB,
                        slab_bytes=8 * u.MB,
                        replication_factor=2,
                        lease_ttl_ns=30_000.0)
    rt = KonaRuntime(config, num_memory_nodes=3, app_ns_per_access=50.0)
    rt.attach_data_plane()
    region = rt.mmap(8 * u.MB)
    rt.write(region.start)             # grows + registers the slot
    yield rt, region
    rt.close()


class TestReplicationManager:
    def test_growth_registers_replica_set_at_factor(self, replicated_runtime):
        rt, region = replicated_runtime
        manager = rt.replication
        slot = manager.slot_of(region.start)
        rset = manager.sets[slot]
        assert len(rset.nodes()) == 2
        assert len(set(rset.nodes())) == 2
        assert manager.leases[slot].node == rset.primary.node

    def test_writes_renew_the_lease(self, replicated_runtime):
        rt, region = replicated_runtime
        manager = rt.replication
        slot = manager.slot_of(region.start)
        before = manager.counters["leases_renewed"]
        manager.route_for(region.start)
        assert manager.counters["leases_renewed"] == before + 1
        assert manager.leases[slot].expires_at_ns == \
            rt.fabric.clock.now + manager.lease_ttl_ns

    def test_redirect_fences_and_restamps_stale_records(
            self, replicated_runtime):
        rt, region = replicated_runtime
        manager = rt.replication
        slot = manager.slot_of(region.start)
        rset = manager.sets[slot]
        old_primary = rset.primary.node
        rt.controller.node(old_primary).fail()
        rt.on_memnode_failure(old_primary)
        new_primary = rset.primary.node
        assert new_primary != old_primary

        stale = _record(region.start, version=1, epoch=0)
        keep, moved = manager.redirect_records(old_primary, [stale])
        assert keep == []
        assert list(moved) == [new_primary]
        restamped = moved[new_primary][0]
        assert restamped.epoch == rset.epoch == 1
        offset = region.start - manager.vfmem_base - slot * manager.slab_bytes
        assert restamped.remote_addr == \
            rset.primary.remote_range.start + offset
        assert manager.counters["stale_epoch_writes_fenced"] == 1

    def test_legacy_records_pass_through_untouched(self, replicated_runtime):
        rt, _ = replicated_runtime
        legacy = LogRecord(remote_addr=0x123)
        keep, moved = rt.replication.redirect_records("mem0", [legacy])
        assert keep == [legacy] and moved == {}

    def test_failover_waits_out_the_primary_lease(self, replicated_runtime):
        rt, region = replicated_runtime
        manager = rt.replication
        slot = manager.slot_of(region.start)
        victim = manager.sets[slot].primary.node
        manager.renew_lease(slot)
        rt.controller.node(victim).fail()
        report = manager.on_node_failure(victim)
        assert slot in report.promoted_slots
        assert report.lease_wait_ns == pytest.approx(manager.lease_ttl_ns)

    def test_expired_lease_means_no_fencing_wait(self, replicated_runtime):
        rt, region = replicated_runtime
        manager = rt.replication
        slot = manager.slot_of(region.start)
        victim = manager.sets[slot].primary.node
        rt.fabric.clock.advance(manager.lease_ttl_ns + 1.0)
        rt.controller.node(victim).fail()
        report = manager.on_node_failure(victim)
        assert report.lease_wait_ns == 0.0

    def test_promotion_rebinds_the_translation_map(self, replicated_runtime):
        rt, region = replicated_runtime
        manager = rt.replication
        slot = manager.slot_of(region.start)
        victim = manager.sets[slot].primary.node
        rt.controller.node(victim).fail()
        rt.on_memnode_failure(victim)
        location = rt.translation.resolve(region.start)
        assert location.node == manager.sets[slot].primary.node

    def test_re_replication_restores_the_factor(self, replicated_runtime):
        rt, region = replicated_runtime
        manager = rt.replication
        slot = manager.slot_of(region.start)
        victim = manager.sets[slot].primary.node
        rt.controller.node(victim).fail()
        rt.on_memnode_failure(victim)
        assert not manager.fully_replicated()
        manager.re_replicate_all()
        assert manager.fully_replicated()
        assert manager.backlog_slots == 0
        assert victim not in manager.sets[slot].nodes()

    def test_re_replication_copies_primary_content(self, replicated_runtime):
        rt, region = replicated_runtime
        manager = rt.replication
        slot = manager.slot_of(region.start)
        rset = manager.sets[slot]
        primary = rt.controller.node(rset.primary.node)
        primary.store.apply(_record(region.start, 7))
        victim = rset.backups[0].node
        rt.controller.node(victim).fail()
        rt.on_memnode_failure(victim)
        manager.re_replicate_all()
        new_backup = rt.controller.node(rset.backups[-1].node)
        assert new_backup.store.get(region.start).version == 7

    def test_read_repair_restores_corrupted_payload(self, replicated_runtime):
        rt, region = replicated_runtime
        manager = rt.replication
        rset = manager.sets[manager.slot_of(region.start)]
        for name in rset.nodes():
            rt.controller.node(name).store.apply(_record(region.start, 4))
        primary = rt.controller.node(rset.primary.node)
        primary.store.corrupt(region.start)
        mismatches, repairs, ns = manager.verify_page(
            region.start, rset.primary.node)
        assert (mismatches, repairs) == (1, 1)
        assert ns > 0.0
        assert primary.store.get(region.start).intact
        assert manager.counters["unrepaired_corruption"] == 0

    def test_scrub_sweeps_every_replica(self, replicated_runtime):
        rt, region = replicated_runtime
        manager = rt.replication
        rset = manager.sets[manager.slot_of(region.start)]
        for name in rset.nodes():
            rt.controller.node(name).store.apply(_record(region.start, 2))
        backup = rt.controller.node(rset.backups[0].node)
        backup.store.corrupt(region.start)
        checked, repaired, _ = manager.scrub()
        assert checked >= 2 and repaired == 1
        assert backup.store.get(region.start).intact

    def test_epochs_stay_monotonic_across_failovers(self, replicated_runtime):
        rt, region = replicated_runtime
        manager = rt.replication
        slot = manager.slot_of(region.start)
        victim = manager.sets[slot].primary.node
        rt.controller.node(victim).fail()
        rt.on_memnode_failure(victim)
        manager.re_replicate_all()
        rt.controller.node(victim).recover()
        second = manager.sets[slot].primary.node
        rt.controller.node(second).fail()
        rt.on_memnode_failure(second)
        assert manager.sets[slot].epoch == 2
        assert manager.epochs_monotonic()
        assert manager.max_epoch == 2
