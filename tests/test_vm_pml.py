"""Tests for the PML tracking baseline."""

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import ConfigError
from repro.vm.faults import FaultPath, PageFaultModel
from repro.vm.pml import PML_FLUSH_NS, PMLTracker
from repro.vm.writeprotect import WriteProtectTracker


class TestPMLMechanics:
    def test_first_write_logs_no_stall(self):
        pml = PMLTracker()
        pml.begin_window()
        assert pml.on_write(5) == 0.0     # buffered, no fault
        assert pml.dirty_pages() == {5}

    def test_repeat_writes_not_relogged(self):
        pml = PMLTracker()
        pml.begin_window()
        pml.on_write(5)
        pml.on_write(5)
        assert pml.counters["entries_logged"] == 1

    def test_buffer_full_causes_vm_exit(self):
        pml = PMLTracker(buffer_entries=4)
        pml.begin_window()
        costs = [pml.on_write(vpn) for vpn in range(5)]
        assert costs[:3] == [0.0, 0.0, 0.0]
        assert costs[3] == PML_FLUSH_NS     # 4th entry fills the buffer
        assert pml.counters["vm_exits"] == 1

    def test_vectorized_window(self):
        pml = PMLTracker(buffer_entries=8)
        pml.begin_window()
        addrs = (np.arange(20, dtype=np.uint64) * np.uint64(u.PAGE_4K))
        cost = pml.process_window(addrs)
        assert pml.counters["vm_exits"] == 2
        assert cost == 2 * PML_FLUSH_NS

    def test_page_granularity_unchanged(self):
        # PML's amplification is identical to write-protection's.
        pml = PMLTracker()
        pml.begin_window()
        pml.on_write(0)
        assert pml.dirty_bytes() == u.PAGE_4K

    def test_invalid_buffer_rejected(self):
        with pytest.raises(ConfigError):
            PMLTracker(buffer_entries=0)


class TestPMLVsWriteProtect:
    def test_pml_is_cheaper_per_dirty_page(self):
        """PML amortizes one VM exit over 512 pages; WP faults per page."""
        wp = WriteProtectTracker(PageFaultModel(FaultPath.USERFAULTFD))
        pml = PMLTracker()
        vpns = np.arange(2048, dtype=np.uint64) * np.uint64(u.PAGE_4K)
        wp.track(set(range(2048)))          # pages are mapped remote
        wp.begin_window()
        wp_cost = wp.process_window(vpns)
        pml.begin_window()
        pml_cost = pml.process_window(vpns)
        assert pml_cost < wp_cost / 10

    def test_kona_beats_both_on_granularity(self):
        # The structural point: PML fixes the overhead, not the
        # amplification; only line tracking fixes both.
        pml = PMLTracker()
        pml.begin_window()
        pml.on_write(0)       # the app wrote, say, 64 bytes
        kona_bytes = u.CACHE_LINE
        assert pml.dirty_bytes() == 64 * kona_bytes
