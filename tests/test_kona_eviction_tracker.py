"""Tests for the Eviction Handler and Dirty Data Tracker."""

import numpy as np
import pytest

import repro.common.units as u
from repro.cluster.controller import RackController
from repro.cluster.memnode import MemoryNode
from repro.common.errors import NetworkError
from repro.fpga.bitmap import DirtyBitmap
from repro.fpga.translation import RemoteTranslationMap
from repro.kona.config import KonaConfig
from repro.kona.eviction import EvictionHandler
from repro.kona.tracker import DirtyDataTracker, SnapshotDiffTracker
from repro.net.fabric import Fabric


def make_handler(replicas=1, full_page_threshold=56, batch=64 * u.KB):
    config = KonaConfig(fmem_capacity=4 * u.MB, vfmem_capacity=64 * u.MB,
                        slab_bytes=16 * u.MB,
                        replication_factor=replicas,
                        rdma_batch_bytes=batch,
                        full_page_threshold=full_page_threshold)
    fabric = Fabric()
    controller = RackController()
    for i in range(2):
        controller.register_node(
            MemoryNode(f"m{i}", 64 * u.MB, fabric, slab_bytes=16 * u.MB))
    translation = RemoteTranslationMap(0, 16 * u.MB)
    slab = controller.node("m0").grant_slab()
    replicas_slabs = None
    if replicas > 1:
        replicas_slabs = [controller.node("m1").grant_slab()]
    translation.bind(0, slab, replicas=replicas_slabs)
    handler = EvictionHandler(config, translation, controller)
    return handler, controller


class TestEvictionHandler:
    def test_clean_page_is_silent(self):
        handler, _ = make_handler()
        assert handler.evict_page(0, 0) == 0.0
        assert handler.stats.clean_pages == 1
        assert handler.stats.wire_bytes == 0

    def test_dirty_lines_logged_not_whole_page(self):
        handler, _ = make_handler()
        handler.evict_page(0, 0b111)    # 3 dirty lines
        assert handler.stats.lines_logged == 3
        assert handler.stats.dirty_bytes == 3 * u.CACHE_LINE
        assert handler.stats.full_page_writes == 0

    def test_fully_dirty_page_ships_whole(self):
        handler, _ = make_handler()
        full = (1 << 64) - 1
        handler.evict_page(0, full)
        assert handler.stats.full_page_writes == 1
        assert handler.stats.wire_bytes == u.PAGE_4K

    def test_threshold_switches_strategy(self):
        handler, _ = make_handler(full_page_threshold=8)
        handler.evict_page(0, (1 << 8) - 1)    # exactly 8 lines
        assert handler.stats.full_page_writes == 1

    def test_batching_defers_rdma(self):
        handler, controller = make_handler()
        handler.evict_page(0, 0b1)
        assert handler.pending_records == 1
        assert handler.counters["log_flushes"] == 0
        handler.flush_all()
        assert handler.pending_records == 0
        assert handler.counters["log_flushes"] == 1

    def test_batch_flushes_automatically_when_full(self):
        handler, _ = make_handler(batch=10 * 72)
        for page in range(12):
            handler.evict_page(page * u.PAGE_4K, 0b1)
        assert handler.counters["log_flushes"] >= 1

    def test_records_reach_memory_node(self):
        handler, controller = make_handler()
        handler.evict_page(0, 0b11)
        handler.flush_all()
        assert handler.counters["records_delivered"] == 2

    def test_goodput_accounting(self):
        handler, _ = make_handler()
        handler.evict_page(0, 0b1111)
        handler.flush_all()
        assert handler.stats.goodput_bytes_per_s() > 0

    def test_replication_doubles_wire_bytes(self):
        single, _ = make_handler(replicas=1)
        double, _ = make_handler(replicas=2)
        single.evict_page(0, 0b1)
        single.flush_all()
        double.evict_page(0, 0b1)
        double.flush_all()
        assert double.stats.wire_bytes == 2 * single.stats.wire_bytes

    def test_dead_node_parks_instead_of_raising(self):
        # Durable eviction (section 4.5): a flush to a dead node must
        # requeue the records, not drop them on the floor.
        handler, controller = make_handler()
        handler.evict_page(0, 0b1)
        controller.node("m0").fail()
        handler.flush_all()
        assert handler.pending_records == 0
        assert handler.parked_records == 1
        assert handler.counters["lines_requeued"] == 1
        assert handler.counters["records_delivered"] == 0

    def test_parked_records_drain_on_recovery(self):
        handler, controller = make_handler()
        handler.evict_page(0, 0b11)
        controller.node("m0").fail()
        handler.flush_all()
        assert handler.parked_records == 2
        controller.node("m0").recover()
        handler.drain_recovered()
        assert handler.parked_records == 0
        assert handler.counters["lines_redelivered"] == 2
        assert handler.counters["records_delivered"] == 2

    def test_breakdown_buckets_present(self):
        handler, _ = make_handler()
        for page in range(64):
            handler.evict_page(page * u.PAGE_4K, 0b11111111)
        handler.flush_all()
        fractions = handler.stats.account.fractions()
        assert set(fractions) >= {"bitmap", "copy", "rdma_write", "ack_wait"}
        # Copy dominates, as in Figure 11c.
        assert fractions["copy"] == max(fractions.values())


class TestDirtyDataTracker:
    def test_amplification_vs_page(self):
        bitmap = DirtyBitmap()
        tracker = DirtyDataTracker(bitmap)
        bitmap.mark_line(0)           # 1 line in page 0
        bitmap.mark_line(4096)        # 1 line in page 1
        # Page tracking would ship 2 pages; CL tracking ships 2 lines.
        assert tracker.dirty_bytes_page() == 2 * u.PAGE_4K
        assert tracker.dirty_bytes_cacheline() == 2 * u.CACHE_LINE
        assert tracker.amplification_vs_page() == pytest.approx(64.0)

    def test_no_writes_is_nan(self):
        tracker = DirtyDataTracker(DirtyBitmap())
        assert np.isnan(tracker.amplification_vs_page())


class TestSnapshotDiffTracker:
    def test_detects_changed_lines_only(self):
        tracker = SnapshotDiffTracker()
        page = np.zeros(u.PAGE_4K, dtype=np.uint8)
        tracker.on_fetch(0, page)
        current = page.copy()
        current[0] = 1                 # line 0
        current[130] = 7               # line 2
        mask = tracker.diff_on_evict(0, current)
        assert mask == 0b101

    def test_identical_content_is_clean(self):
        tracker = SnapshotDiffTracker()
        page = np.arange(u.PAGE_4K, dtype=np.uint8) % 251
        tracker.on_fetch(0, page)
        assert tracker.diff_on_evict(0, page.copy()) == 0

    def test_unsnapshotted_page_conservatively_dirty(self):
        tracker = SnapshotDiffTracker()
        mask = tracker.diff_on_evict(9, np.zeros(u.PAGE_4K, dtype=np.uint8))
        assert mask == (1 << 64) - 1

    def test_diff_cost_accumulates(self):
        tracker = SnapshotDiffTracker()
        page = np.zeros(u.PAGE_4K, dtype=np.uint8)
        tracker.on_fetch(0, page)
        tracker.diff_on_evict(0, page)
        assert tracker.diff_time_ns > 0

    def test_snapshot_consumed_by_diff(self):
        tracker = SnapshotDiffTracker()
        page = np.zeros(u.PAGE_4K, dtype=np.uint8)
        tracker.on_fetch(0, page)
        assert tracker.tracked_pages == 1
        tracker.diff_on_evict(0, page)
        assert tracker.tracked_pages == 0
