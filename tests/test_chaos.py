"""Tests for the chaos engine: campaigns, invariants, determinism."""

import pytest

import repro.common.units as u
from repro.chaos import ChaosEngine, check_all
from repro.chaos.invariants import amat_recovered
from repro.experiments.chaos import (
    REGION_BYTES,
    build_chaos_runtime,
    chaos_stream,
    run_chaos,
)
from repro.kona.health import HealthState

CAMPAIGN_OPS = 9_000


@pytest.fixture(scope="module")
def campaign():
    """One full node-failure campaign, shared across assertions."""
    return run_chaos(seed=0, ops=CAMPAIGN_OPS)


class TestNodeFailureCampaign:
    def test_all_invariants_hold(self, campaign):
        assert campaign.passed, [c.detail for c in campaign.invariants
                                 if not c.passed]

    def test_fault_degraded_the_runtime(self, campaign):
        health = campaign.telemetry.data["health"]
        assert health["degradations"] >= 1
        assert health["recoveries"] >= 1
        assert health["state"] == "HEALTHY"
        assert health["mttr_ns"] > 0

    def test_dirty_lines_requeued_and_redelivered(self, campaign):
        health = campaign.telemetry.data["health"]
        # The kill landed mid-eviction: dirty lines homed on the dead
        # node parked instead of vanishing, then drained on recovery.
        assert health["lines_requeued"] > 0
        assert health["lines_redelivered"] == health["lines_requeued"]
        assert health["parked_records"] == 0

    def test_timeline_records_the_script(self, campaign):
        labels = [label for _, label in campaign.timeline]
        assert any(label.startswith("kill:") for label in labels)
        assert any(label.startswith("recover:") for label in labels)
        assert "runtime_recovered" in labels

    def test_amat_returns_to_baseline(self, campaign):
        assert campaign.pre_fault_amat_ns > 0
        ratio = campaign.post_recovery_amat_ns / campaign.pre_fault_amat_ns
        assert ratio <= 1.35


class TestDeterminism:
    """Satellite: same seed -> byte-identical telemetry; seeds vary."""

    def test_same_seed_identical_fingerprint(self):
        first = run_chaos(seed=3, ops=CAMPAIGN_OPS)
        second = run_chaos(seed=3, ops=CAMPAIGN_OPS)
        assert first.fingerprint() == second.fingerprint()

    def test_different_seeds_differ(self):
        first = run_chaos(seed=3, ops=CAMPAIGN_OPS)
        other = run_chaos(seed=4, ops=CAMPAIGN_OPS)
        assert first.fingerprint() != other.fingerprint()


class TestFlakyLinkCampaign:
    def test_retries_recover_without_data_loss(self):
        rt = build_chaos_runtime(seed=1)
        region = rt.mmap(REGION_BYTES)
        addrs, writes = chaos_stream(region.start, 8_000, seed=1)
        engine = ChaosEngine(rt, seed=1)
        engine.flaky_link(100_000.0, "compute", "mem0", 0.8)
        engine.pressure(150_000.0, pages=rt.fmem.num_frames // 2)
        engine.pressure(250_000.0, pages=rt.fmem.num_frames // 2)
        engine.clear_flaky(450_000.0, "compute", "mem0")
        result = engine.run(addrs, writes)
        assert result.passed, [c.detail for c in result.invariants
                               if not c.passed]
        # Dropped flushes were retried on the seeded backoff path.
        assert rt.eviction.counters["flush_retries"] > 0
        assert rt.fabric.counters["dropped_transfers"] > 0
        assert rt.eviction.stats.account["retry_backoff"] > 0


class TestPartitionCampaign:
    def test_partition_parks_then_drains(self):
        rt = build_chaos_runtime(seed=2)
        region = rt.mmap(REGION_BYTES)
        addrs, writes = chaos_stream(region.start, 8_000, seed=2)
        engine = ChaosEngine(rt, seed=2)
        engine.partition(120_000.0, ["compute"], ["mem0"])
        engine.pressure(200_000.0, pages=rt.fmem.num_frames // 2)
        engine.heal_partition(350_000.0)
        result = engine.run(addrs, writes)
        assert result.passed, [c.detail for c in result.invariants
                               if not c.passed]
        assert rt.eviction.counters["lines_requeued"] > 0
        assert rt.eviction.parked_records == 0


class TestBackpressure:
    def test_overflow_charges_stall_but_loses_nothing(self):
        rt = build_chaos_runtime(seed=0)
        # Shrink the park so the outage overflows it immediately.
        rt.eviction.writeback_buffer.capacity = 64
        region = rt.mmap(REGION_BYTES)
        addrs, writes = chaos_stream(region.start, 8_000, seed=0)
        engine = ChaosEngine(rt, seed=0)
        engine.kill_node(100_000.0, "mem0")
        engine.pressure(200_000.0, pages=rt.fmem.num_frames // 2)
        engine.recover_node(400_000.0, "mem0")
        result = engine.run(addrs, writes)
        ev = rt.eviction
        assert ev.counters["backpressure_stalls"] > 0
        assert ev.stats.account["backpressure_stall"] > 0
        # Overflow throttles the producer; it never drops records.
        assert result.passed, [c.detail for c in result.invariants
                               if not c.passed]


class TestInvariantChecks:
    def test_amat_recovered_tolerance(self):
        assert amat_recovered(100.0, 120.0, tolerance=0.25).passed
        assert not amat_recovered(100.0, 130.0, tolerance=0.25).passed

    def test_amat_without_baseline_fails(self):
        check = amat_recovered(0.0, 50.0)
        assert not check.passed
        assert "baseline" in check.detail

    def test_check_all_on_quiet_runtime(self):
        rt = build_chaos_runtime(seed=0)
        checks = check_all(rt, pre_fault_amat_ns=100.0,
                           post_recovery_amat_ns=100.0)
        assert [c.name for c in checks] == [
            "writeback_conservation", "no_scatter_loss",
            "fully_recovered", "amat_recovered"]
        assert all(c.passed for c in checks)
        assert rt.health.state is HealthState.HEALTHY
