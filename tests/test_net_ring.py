"""Tests for the ring-buffer cache-line log."""

import pytest

import repro.common.units as u
from repro.common.errors import ConfigError, NetworkError
from repro.net.ring import RECORD_BYTES, LogRecord, RingBufferLog, pack_dirty_lines


class TestRing:
    def test_record_framing(self):
        # 8-byte destination + one cache line.
        assert RECORD_BYTES == 8 + u.CACHE_LINE

    def test_append_consume_order(self):
        ring = RingBufferLog(capacity_records=8)
        ring.append([LogRecord(100), LogRecord(200)])
        out = ring.consume()
        assert [r.remote_addr for r in out] == [100, 200]

    def test_overflow_rejected(self):
        ring = RingBufferLog(capacity_records=2)
        ring.append([LogRecord(0), LogRecord(64)])
        with pytest.raises(NetworkError):
            ring.append([LogRecord(128)])
        assert ring.counters["producer_stalls"] == 1

    def test_ack_frees_space(self):
        ring = RingBufferLog(capacity_records=2)
        ring.append([LogRecord(0), LogRecord(64)])
        ring.consume()
        assert ring.free_records == 0      # consumed but not acked
        freed = ring.acknowledge()
        assert freed == 2
        assert ring.free_records == 2
        ring.append([LogRecord(128)])      # fits again

    def test_partial_consume(self):
        ring = RingBufferLog(capacity_records=8)
        ring.append([LogRecord(i * 64) for i in range(5)])
        first = ring.consume(max_records=2)
        assert len(first) == 2
        assert len(ring) == 3
        rest = ring.consume()
        assert len(rest) == 3

    def test_bytes_outstanding(self):
        ring = RingBufferLog()
        ring.append([LogRecord(0)] * 3)
        assert ring.bytes_outstanding == 3 * RECORD_BYTES
        ring.consume()
        assert ring.bytes_outstanding == 0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            RingBufferLog(capacity_records=0)

    def test_unacked_tracking(self):
        ring = RingBufferLog()
        ring.append([LogRecord(0)])
        ring.consume()
        assert ring.unacked_records == 1
        ring.acknowledge()
        assert ring.unacked_records == 0


class TestPacking:
    def test_pack_dirty_lines(self):
        records, nbytes = pack_dirty_lines([0, 64, 128])
        assert len(records) == 3
        assert nbytes == 3 * RECORD_BYTES
        assert records[1].remote_addr == 64
