"""Tests for the applications built on the public API."""

import numpy as np
import pytest

import repro.common.units as u
from repro.apps import RemoteGraph, RemoteKVStore
from repro.common.errors import AllocationError, ConfigError
from repro.kona import KonaConfig, KonaRuntime


@pytest.fixture
def app_runtime():
    config = KonaConfig(fmem_capacity=8 * u.MB, vfmem_capacity=64 * u.MB,
                        slab_bytes=16 * u.MB)
    return KonaRuntime(config)


class TestKVStore:
    def test_put_get_roundtrip(self, app_runtime):
        store = RemoteKVStore(app_runtime, capacity=256)
        store.put("alpha", b"one")
        store.put("beta", b"two")
        assert store.get("alpha") == b"one"
        assert store.get("beta") == b"two"
        assert len(store) == 2

    def test_update_overwrites(self, app_runtime):
        store = RemoteKVStore(app_runtime, capacity=256)
        store.put("k", b"v1")
        store.put("k", b"v2")
        assert store.get("k") == b"v2"
        assert len(store) == 1

    def test_missing_key(self, app_runtime):
        store = RemoteKVStore(app_runtime, capacity=256)
        assert store.get("ghost") is None
        assert store.stats.misses == 1

    def test_delete_and_backward_shift(self, app_runtime):
        store = RemoteKVStore(app_runtime, capacity=64)
        keys = [f"key-{i}" for i in range(20)]
        for key in keys:
            store.put(key, key.encode())
        assert store.delete("key-7")
        assert store.get("key-7") is None
        # Every other key still reachable despite probe-chain shifts.
        for key in keys:
            if key != "key-7":
                assert store.get(key) == key.encode()

    def test_delete_missing_returns_false(self, app_runtime):
        store = RemoteKVStore(app_runtime, capacity=64)
        assert not store.delete("nothing")

    def test_collisions_probe_remotely(self, app_runtime):
        store = RemoteKVStore(app_runtime, capacity=16)
        # Deterministically find three keys that hash to the same slot.
        target = RemoteKVStore._hash("seed") & 15
        colliders = [k for k in (f"k{i}" for i in range(5000))
                     if RemoteKVStore._hash(k) & 15 == target][:3]
        assert len(colliders) == 3
        for key in colliders:
            store.put(key, b"x")
        assert store.stats.probes > len(colliders)   # probing happened
        for key in colliders:
            assert store.get(key) == b"x"

    def test_table_full(self, app_runtime):
        store = RemoteKVStore(app_runtime, capacity=4)
        for i in range(4):
            store.put(f"k{i}", b"x")
        with pytest.raises(AllocationError):
            store.put("overflow", b"x")

    def test_remote_traffic_happens(self, app_runtime):
        store = RemoteKVStore(app_runtime, capacity=256)
        for i in range(64):
            store.put(f"key-{i}", bytes(100))
        assert store.stats.stall_ns > 0
        assert app_runtime.agent.counters["remote_fetches"] > 0
        # And the dirty data is being tracked at line granularity.
        app_runtime.cpu_cache.flush_tracked()
        assert app_runtime.tracker.dirty_bytes_cacheline() > 0

    def test_invalid_capacity(self, app_runtime):
        with pytest.raises(ConfigError):
            RemoteKVStore(app_runtime, capacity=100)


class TestRemoteGraph:
    def _ring_edges(self, n):
        return [(i, (i + 1) % n) for i in range(n)]

    def test_bfs_levels_on_ring(self, app_runtime):
        graph = RemoteGraph(app_runtime, self._ring_edges(8))
        levels = graph.bfs(0)
        assert levels[0] == 0
        assert levels[1] == 1 and levels[7] == 1
        assert levels[4] == 4
        assert len(levels) == 8

    def test_bfs_matches_networkx(self, app_runtime):
        nx = pytest.importorskip("networkx")
        g = nx.gnm_random_graph(40, 120, seed=3)
        edges = list(g.edges())
        graph = RemoteGraph(app_runtime, edges, num_vertices=40)
        levels = graph.bfs(0)
        expected = nx.single_source_shortest_path_length(g, 0)
        assert levels == dict(expected)

    def test_pagerank_sums_to_one(self, app_runtime):
        graph = RemoteGraph(app_runtime, self._ring_edges(16))
        rank = graph.pagerank(iterations=5)
        assert rank.sum() == pytest.approx(1.0, rel=1e-6)
        # Symmetric ring: all ranks equal.
        assert np.allclose(rank, rank[0])

    def test_degree(self, app_runtime):
        graph = RemoteGraph(app_runtime, [(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1

    def test_traversal_generates_remote_traffic(self, app_runtime):
        graph = RemoteGraph(app_runtime, self._ring_edges(64))
        before = app_runtime.agent.counters["remote_fetches"]
        graph.bfs(0)
        assert graph.stall_ns > 0
        assert app_runtime.agent.counters["remote_fetches"] >= before

    def test_empty_graph_rejected(self, app_runtime):
        with pytest.raises(ConfigError):
            RemoteGraph(app_runtime, [])

    def test_bad_source_rejected(self, app_runtime):
        graph = RemoteGraph(app_runtime, [(0, 1)])
        with pytest.raises(ConfigError):
            graph.bfs(9)
