"""Differential tests: scalar vs batched ``run_trace`` engines.

The batched engine's acceptance bar is *bit-identity*: every counter
at every layer, the dirty bitmap, the time accounting and the report
must match the scalar oracle exactly — across workload models,
coherence protocols, prefetch policies, observability settings, and a
mid-trace node-failure campaign.
"""

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import AddressError, ConfigError
from repro.experiments.bench import runtime_fingerprint
from repro.experiments.chaos import (REGION_BYTES, build_chaos_runtime,
                                     chaos_stream)
from repro.kona.config import KonaConfig
from repro.kona.runtime import KonaRuntime
from repro.obs import FlightRecorder
from repro.workloads import WORKLOADS

N = 4_000


def build_runtime(recorder=None, **overrides):
    defaults = dict(fmem_capacity=8 * u.MB, vfmem_capacity=512 * u.MB,
                    slab_bytes=16 * u.MB)
    defaults.update(overrides)
    return KonaRuntime(KonaConfig(**defaults), app_ns_per_access=70.0,
                       recorder=recorder)


def hot_trace(n, region_bytes, seed=3, hot_lines=2048, cold=0.01):
    """Mostly CPU-cache hits with occasional cold lines (vector path)."""
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, hot_lines, size=n, dtype=np.int64)
    mask = rng.random(n) < cold
    lines[mask] = rng.integers(hot_lines, region_bytes // u.CACHE_LINE,
                               size=int(mask.sum()), dtype=np.int64)
    return lines * u.CACHE_LINE, rng.random(n) < 0.4


def run_pair(make_runtime, make_trace):
    """Run the same trace on both engines; return both fingerprints."""
    out = {}
    for engine in ("scalar", "batched"):
        rt = make_runtime()
        addrs, writes = make_trace(rt)
        report = rt.run_trace(addrs, writes, engine=engine)
        out[engine] = runtime_fingerprint(rt, report)
    return out


def assert_identical(make_runtime, make_trace):
    got = run_pair(make_runtime, make_trace)
    assert got["scalar"] == got["batched"]


def workload_trace(name, n=N):
    def make(rt):
        model = WORKLOADS[name]()
        trace = model.generate(windows=2, seed=7)
        region = rt.mmap(model.memory_bytes)
        m = min(n, len(trace))
        return trace.addrs[:m] + np.uint64(region.start), trace.writes[:m]
    return make


def mapped_hot_trace(n=N, **kwargs):
    def make(rt):
        region = rt.mmap(32 * u.MB)
        addrs, writes = hot_trace(n, 32 * u.MB, **kwargs)
        return addrs + np.int64(region.start), writes
    return make


class TestWorkloadModels:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_engines_identical(self, name):
        assert_identical(build_runtime, workload_trace(name))


class TestConfigurationMatrix:
    @pytest.mark.parametrize("protocol", ["msi", "mesi", "moesi"])
    def test_protocols(self, protocol):
        # MSI grants S on every read fill, so writes exercise the
        # upgrade path the vectorized front-end replays one by one.
        assert_identical(lambda: build_runtime(protocol=protocol),
                         mapped_hot_trace())

    @pytest.mark.parametrize("policy", ["none", "next-page", "stride",
                                        "leap"])
    def test_prefetch_policies(self, policy):
        assert_identical(lambda: build_runtime(prefetch_policy=policy),
                         workload_trace("redis-seq"))

    def test_eager_upgrade_tracking(self):
        assert_identical(
            lambda: build_runtime(protocol="msi",
                                  eager_upgrade_tracking=True),
            mapped_hot_trace())

    def test_tiny_fmem_eviction_pressure(self):
        # FMem far smaller than the footprint: page evictions snoop
        # resident CPU lines mid-batch (the mutation-patching path).
        assert_identical(
            lambda: build_runtime(fmem_capacity=1 * u.MB),
            workload_trace("redis-rand", n=8_000))

    def test_sampler_and_tracing(self):
        def make_rt():
            rec = FlightRecorder(tracing=True, sample_interval_ns=10_000.0)
            return build_runtime(recorder=rec)
        assert_identical(make_rt, mapped_hot_trace())

    def test_tsdb_sample_timelines_identical(self):
        # The time-series store is fed from the sampler on the sim
        # clock, so both engines must produce the same timeline:
        # same timestamps, same gauge values, point for point.
        stores = {}
        for engine in ("scalar", "batched"):
            rec = FlightRecorder(tracing=True, sample_interval_ns=10_000.0)
            rt = build_runtime(recorder=rec)
            region = rt.mmap(32 * u.MB)
            addrs, writes = hot_trace(N, 32 * u.MB)
            rt.run_trace(addrs + np.int64(region.start), writes,
                         engine=engine)
            stores[engine] = rec.tsdb.as_dict()
        assert stores["scalar"]
        assert stores["scalar"] == stores["batched"]


class TestEngineContract:
    def test_batched_is_default(self):
        rt = build_runtime()
        region = rt.mmap(32 * u.MB)
        addrs, writes = hot_trace(N, 32 * u.MB)
        rt.run_trace(addrs + np.int64(region.start), writes)
        twin = build_runtime()
        twin.mmap(32 * u.MB)
        twin.run_trace(addrs + np.int64(region.start), writes,
                       engine="batched")
        assert rt.counters.as_dict() == twin.counters.as_dict()

    def test_unknown_engine_rejected(self):
        rt = build_runtime()
        rt.mmap(32 * u.MB)
        with pytest.raises(ConfigError):
            rt.run_trace(np.zeros(1, dtype=np.int64),
                         np.zeros(1, dtype=bool), engine="warp")

    def test_run_workload_engines_identical(self):
        out = {}
        for engine in ("scalar", "batched"):
            rt = build_runtime()
            report = rt.run_workload(WORKLOADS["histogram"](), windows=2,
                                     seed=5, max_accesses=N, engine=engine)
            out[engine] = runtime_fingerprint(rt, report)
        assert out["scalar"] == out["batched"]

    def test_mid_trace_address_error_parity(self):
        # A wild address mid-trace: both engines execute every prior
        # access, raise AddressError, and leave identical state behind.
        state = {}
        for engine in ("scalar", "batched"):
            rt = build_runtime()
            region = rt.mmap(32 * u.MB)
            addrs, writes = hot_trace(2_000, 32 * u.MB)
            addrs = addrs + np.int64(region.start)
            addrs[1_500] = 7  # below every Kona mapping
            with pytest.raises(AddressError):
                rt.run_trace(addrs, writes, engine=engine)
            state[engine] = (rt.counters.as_dict(),
                             rt.cpu_cache.counters.as_dict(),
                             [list(s.items()) for s in rt.cpu_cache._sets])
        assert state["scalar"] == state["batched"]

    def test_shape_mismatch_rejected(self):
        rt = build_runtime()
        with pytest.raises(ConfigError):
            rt.run_trace(np.zeros(4, dtype=np.int64),
                         np.zeros(3, dtype=bool))


class TestChaosCampaign:
    """Split-trace campaign: fail a replica mid-run, recover, compare."""

    @pytest.mark.parametrize("protocol", ["mesi", "moesi"])
    def test_node_failure_between_spans(self, protocol):
        out = {}
        for engine in ("scalar", "batched"):
            rt = build_chaos_runtime(seed=0, replication=2)
            region = rt.mmap(REGION_BYTES)
            addrs, writes = chaos_stream(region.start, 9_000, seed=4)
            spans = np.array_split(np.arange(addrs.size), 3)
            rt.run_trace(addrs[spans[0]], writes[spans[0]], engine=engine)
            rt.fabric.fail_node("mem0")
            rt.run_trace(addrs[spans[1]], writes[spans[1]], engine=engine)
            rt.fabric.recover_node("mem0")
            rt.recover()
            report = rt.run_trace(addrs[spans[2]], writes[spans[2]],
                                  engine=engine)
            out[engine] = runtime_fingerprint(rt, report)
        assert out["scalar"] == out["batched"]
