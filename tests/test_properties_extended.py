"""Extended property-based tests: VMAs, PML, the KV store, pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

import repro.common.units as u
from repro.apps.kvstore import RemoteKVStore
from repro.kona import KonaConfig, KonaRuntime
from repro.kona.pipeline import EvictionPipeline
from repro.mem.address import AddressRange
from repro.mem.vma import VMA, VMAMap
from repro.vm.faults import FaultPath, PageFaultModel
from repro.vm.pml import PMLTracker
from repro.vm.writeprotect import WriteProtectTracker


class TestVMAProperties:
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=20,
                    unique=True))
    def test_inserted_vmas_never_overlap(self, slots):
        m = VMAMap()
        for slot in slots:
            m.insert(VMA(AddressRange(slot * 8192, 4096)))
        vmas = sorted(m, key=lambda v: v.range.start)
        for a, b in zip(vmas, vmas[1:]):
            assert a.range.end <= b.range.start

    @given(st.lists(st.integers(0, 31), min_size=2, max_size=16,
                    unique=True))
    def test_split_then_merge_is_identity(self, slots):
        m = VMAMap()
        for slot in slots:
            m.insert(VMA(AddressRange(slot * 16384, 16384), name="x"))
        before = {(v.range.start, v.range.size) for v in m}
        for slot in slots:
            m.split(slot * 16384 + 8192)
        while m.merge_adjacent():
            pass
        # Merging can also coalesce VMAs that were adjacent *before*
        # the splits, so compare coverage, not fragment identity.
        covered_before = sorted(
            (start, start + size) for start, size in before)
        covered_after = sorted(
            (v.range.start, v.range.end) for v in m)
        def flatten(spans):
            out = []
            for lo, hi in spans:
                if out and out[-1][1] == lo:
                    out[-1] = (out[-1][0], hi)
                else:
                    out.append((lo, hi))
            return out
        assert flatten(covered_before) == flatten(covered_after)

    @given(st.integers(0, 2 ** 20), st.lists(st.integers(0, 15),
                                             max_size=8, unique=True))
    def test_gap_search_result_is_free(self, floor, slots):
        m = VMAMap()
        for slot in slots:
            m.insert(VMA(AddressRange(slot * 8192, 8192)))
        start = m.find_gap(8192, floor=floor)
        assert start % u.PAGE_4K == 0
        assert start >= floor - u.PAGE_4K
        for vma in m:
            assert not vma.range.overlaps(AddressRange(start, 8192))


class TestPMLProperties:
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
    def test_pml_and_wp_agree_on_dirty_set(self, vpns):
        """Different cost, identical tracked set — the §8 point."""
        pml = PMLTracker(buffer_entries=16)
        wp = WriteProtectTracker(PageFaultModel(FaultPath.USERFAULTFD))
        wp.track(set(range(201)))
        pml.begin_window()
        wp.begin_window()
        for vpn in vpns:
            pml.on_write(vpn)
            wp.on_write(vpn)
        assert pml.dirty_pages() == wp.dirty_pages() == set(vpns)

    @given(st.integers(1, 64), st.integers(1, 500))
    def test_vm_exits_bounded(self, buffer_entries, pages):
        pml = PMLTracker(buffer_entries=buffer_entries)
        pml.begin_window()
        for vpn in range(pages):
            pml.on_write(vpn)
        assert pml.counters["vm_exits"] == pages // buffer_entries


class TestPipelineProperties:
    @given(st.integers(1, 12), st.integers(16, 256))
    @settings(max_examples=20, deadline=None)
    def test_elapsed_at_least_every_stage(self, lines, pages):
        result = EvictionPipeline().run(pages, lines)
        eps = 1.001
        assert result.elapsed_ns * eps >= result.producer_busy_ns
        assert result.elapsed_ns * eps >= result.receiver_busy_ns
        assert result.batches >= 1


class KVStoreMachine(RuleBasedStateMachine):
    """Stateful test: the remote KV store versus a plain dict."""

    def __init__(self):
        super().__init__()
        config = KonaConfig(fmem_capacity=4 * u.MB,
                            vfmem_capacity=64 * u.MB,
                            slab_bytes=16 * u.MB)
        self.store = RemoteKVStore(KonaRuntime(config), capacity=128,
                                   value_log_bytes=16 * u.MB)
        self.model = {}

    keys = st.sampled_from([f"key-{i}" for i in range(40)])
    values = st.binary(min_size=1, max_size=64)

    @rule(key=keys, value=values)
    def put(self, key, value):
        if len(self.model) < 100 or key in self.model:
            self.store.put(key, value)
            self.model[key] = value

    @rule(key=keys)
    def get(self, key):
        assert self.store.get(key) == self.model.get(key)

    @rule(key=keys)
    def delete(self, key):
        existed = key in self.model
        assert self.store.delete(key) == existed
        self.model.pop(key, None)

    @invariant()
    def sizes_agree(self):
        assert len(self.store) == len(self.model)

    @invariant()
    def no_page_faults_ever(self):
        counters = self.store.runtime.page_table.counters
        assert counters["faults_missing"] == 0


KVStoreMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None)
TestKVStoreStateful = KVStoreMachine.TestCase
