"""Partition-sharded execution: disjoint coverage and determinism."""

import numpy as np
import pytest

from repro.common import units
from repro.common.errors import ConfigError
from repro.experiments.shard import (
    ShardSpec,
    _aligned_chunks,
    make_shards,
    run_shard,
    run_sharded,
    shard_mask,
)
from repro.workloads.trace import generate_hot_mix_stream


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("shard") / "hot.trace")
    generate_hot_mix_stream(path, 60_000, hot_lines=4096,
                            region_bytes=16 * units.MB, seed=13,
                            chunk_size=1 << 13)
    return path


def _specs(trace_dir, num_shards, **kw):
    kw.setdefault("fmem_mb", 4)
    kw.setdefault("vfmem_mb", 32)
    kw.setdefault("chunk_size", 1 << 13)
    return make_shards(trace_dir, num_shards, **kw)


class TestPartition:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_masks_disjoint_and_covering(self, num_shards):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 30, 10_000).astype(np.uint64)
        owners = np.zeros(addrs.size, dtype=int)
        for shard in range(num_shards):
            owners += shard_mask(addrs, shard, num_shards)
        assert (owners == 1).all()

    def test_mask_is_page_granular(self):
        # Every line of a 4 KB page belongs to the same shard, so an
        # FMem fetch block never splits across runtimes.
        page = 37 * units.PAGE_4K
        lines = np.arange(page, page + units.PAGE_4K, units.CACHE_LINE,
                          dtype=np.uint64)
        for num_shards in (2, 3, 5):
            masks = [shard_mask(lines, s, num_shards)
                     for s in range(num_shards)]
            assert sum(bool(m.all()) for m in masks) == 1
            assert sum(bool(m.any()) for m in masks) == 1

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            ShardSpec("t", shard=2, num_shards=2)
        with pytest.raises(ConfigError):
            ShardSpec("t", shard=0, num_shards=0)
        with pytest.raises(ConfigError):
            ShardSpec("t", shard=0, num_shards=1, chunk_size=300)


class TestAlignedChunks:
    def test_rechunks_to_cadence_multiples(self):
        rng = np.random.default_rng(1)
        parts = []
        for size in (100, 700, 50, 513, 256, 9):
            parts.append((rng.integers(0, 999, size).astype(np.int64),
                          rng.random(size) < 0.5))
        chunks = list(_aligned_chunks(iter(parts)))
        assert all(a.size % 256 == 0 for a, _ in chunks[:-1])
        total = sum(size for size in (100, 700, 50, 513, 256, 9))
        assert sum(a.size for a, _ in chunks) == total
        # Order preserved: concatenation equals the input stream.
        assert np.array_equal(
            np.concatenate([a for a, _ in chunks]),
            np.concatenate([a for a, _ in parts]))


class TestShardedRun:
    def test_coverage_invariant(self, trace_dir):
        result = run_sharded(_specs(trace_dir, 3), processes=1)
        assert result.accesses == 60_000
        assert sum(o.accesses for o in result.outcomes) == 60_000
        assert result.totals["shard_accesses"] == 60_000

    def test_serial_equals_parallel(self, trace_dir):
        serial = run_sharded(_specs(trace_dir, 2), processes=1)
        parallel = run_sharded(_specs(trace_dir, 2), processes=2)
        assert serial.totals.as_dict() == parallel.totals.as_dict()
        assert [o.accesses for o in serial.outcomes] \
            == [o.accesses for o in parallel.outcomes]
        assert [o.elapsed_ns for o in serial.outcomes] \
            == [o.elapsed_ns for o in parallel.outcomes]

    def test_single_shard_runs(self, trace_dir):
        outcome = run_shard(_specs(trace_dir, 1)[0])
        assert outcome.accesses == 60_000
        assert outcome.elapsed_ns > 0

    def test_elapsed_is_slowest_shard(self, trace_dir):
        result = run_sharded(_specs(trace_dir, 2), processes=1)
        assert result.elapsed_ns \
            == max(o.elapsed_ns for o in result.outcomes)

    def test_rejects_mixed_or_duplicate_specs(self, trace_dir):
        specs = _specs(trace_dir, 2)
        with pytest.raises(ConfigError):
            run_sharded([])
        with pytest.raises(ConfigError):
            run_sharded([specs[0], specs[0]])

    def test_engines_agree(self, trace_dir):
        spec_b = _specs(trace_dir, 2)[0]
        spec_s = ShardSpec(trace_path=spec_b.trace_path, shard=0,
                           num_shards=2, engine="scalar",
                           chunk_size=spec_b.chunk_size,
                           fmem_mb=spec_b.fmem_mb,
                           vfmem_mb=spec_b.vfmem_mb)
        batched = run_shard(spec_b)
        scalar = run_shard(spec_s)
        assert batched.accesses == scalar.accesses
        assert batched.elapsed_ns == scalar.elapsed_ns
        assert batched.remote_fetches == scalar.remote_fetches
        assert batched.counters.as_dict() == scalar.counters.as_dict()
