"""Tests for SLO rules, burn-rate alerting, and health integration."""

import pytest

from repro.common.errors import ConfigError
from repro.obs import (
    MetricsRegistry,
    SLOEngine,
    SLORule,
    TimeSeriesStore,
)


def level_rule(**overrides):
    defaults = dict(name="errors-low", metric="errors", kind="level",
                    op="<=", bound=0.0, objective=0.5,
                    window_ns=100.0, long_window_factor=4.0,
                    burn_threshold=1.5)
    defaults.update(overrides)
    return SLORule(**defaults)


class TestSLORule:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SLORule(name="x", metric="m", kind="median")
        with pytest.raises(ConfigError):
            SLORule(name="x", metric="m", op="!=")
        with pytest.raises(ConfigError):
            SLORule(name="x", metric="m", objective=1.0)
        with pytest.raises(ConfigError):
            SLORule(name="x", metric="m", window_ns=0.0)

    def test_error_budget_and_good(self):
        rule = SLORule(name="x", metric="m", op="<=", bound=10.0,
                       objective=0.99)
        assert rule.error_budget == pytest.approx(0.01)
        assert rule.good(10.0)
        assert not rule.good(10.5)


class TestEngineBasics:
    def test_duplicate_rule_names_raise(self):
        with pytest.raises(ConfigError):
            SLOEngine(TimeSeriesStore(), [level_rule(), level_rule()])

    def test_no_samples_no_alert(self):
        engine = SLOEngine(TimeSeriesStore(), [level_rule()])
        assert engine.evaluate_at(1_000.0) == []

    def test_level_rule_fires_on_bad_window(self):
        store = TimeSeriesStore()
        for ts in (10.0, 50.0, 90.0):
            store.append(ts, "errors", 1.0)   # every sample bad
        engine = SLOEngine(store, [level_rule()])
        firing = engine.evaluate_at(100.0)
        assert [a.rule for a in firing] == ["errors-low"]
        # bad fraction 1.0 over budget 0.5 -> burn 2x.
        assert firing[0].burn_rate == pytest.approx(2.0)
        assert "burn" in firing[0].brief()

    def test_long_window_vetoes_stale_blip(self):
        store = TimeSeriesStore()
        # Long window (400 ns) mostly good; short window (100 ns) bad.
        for ts in range(0, 300, 20):
            store.append(float(ts), "errors", 0.0)
        store.append(350.0, "errors", 1.0)
        engine = SLOEngine(store, [level_rule()])
        # Short burn = 2x >= 1.5, but long burn = (1/16)/0.5 < 1.5.
        assert engine.evaluate_at(400.0) == []

    def test_alerts_deduplicated_per_instant(self):
        store = TimeSeriesStore()
        store.append(90.0, "errors", 1.0)
        engine = SLOEngine(store, [level_rule()])
        engine.evaluate_at(100.0)
        engine.evaluate_at(100.0)
        assert len(engine.alerts) == 1


class TestRateRules:
    def test_rate_rule_judges_counter_increase(self):
        store = TimeSeriesStore()
        # A counter flat at 5, then jumping: the jump is the bad rate.
        for ts, v in [(0.0, 5.0), (50.0, 5.0), (100.0, 9.0)]:
            store.append(ts, "failovers", v)
        rule = level_rule(name="no-failovers", metric="failovers",
                          kind="rate", window_ns=200.0,
                          burn_threshold=1.0)
        firing = SLOEngine(store, [rule]).evaluate_at(100.0)
        # One bad of two judged rates over budget 0.5 -> burn 1.0.
        assert len(firing) == 1
        # 4 increments over 50 ns -> 8e7 per simulated second.
        assert firing[0].value == pytest.approx(8e7)

    def test_flat_counter_is_good(self):
        store = TimeSeriesStore()
        for ts in (0.0, 50.0, 100.0):
            store.append(ts, "failovers", 5.0)
        rule = level_rule(name="no-failovers", metric="failovers",
                          kind="rate", window_ns=200.0)
        assert SLOEngine(store, [rule]).evaluate_at(100.0) == []


class TestQuantileRules:
    def make(self, p99_bound):
        registry = MetricsRegistry()
        hist = registry.histogram("stall_ns")
        # A 10% tail at 100 us puts the p99 estimate inside the tail.
        for v in [10.0] * 90 + [100_000.0] * 10:
            hist.observe(v)
        rule = SLORule(name="stall-p99", metric="stall_ns",
                       kind="quantile", op="<=", bound=p99_bound,
                       quantile=0.99)
        return SLOEngine(TimeSeriesStore(), [rule], registry=registry)

    def test_violated_tail_fires(self):
        firing = self.make(p99_bound=50.0).evaluate_at(0.0)
        assert len(firing) == 1
        assert firing[0].burn_rate == float("inf")
        assert "threshold breached" in firing[0].brief()

    def test_good_tail_silent(self):
        assert self.make(p99_bound=1e9).evaluate_at(0.0) == []

    def test_no_registry_is_silent(self):
        rule = SLORule(name="q", metric="stall_ns", kind="quantile")
        assert SLOEngine(TimeSeriesStore(), [rule]).evaluate_at(0.0) == []


class TestSweepAndVerdicts:
    def make_engine(self):
        store = TimeSeriesStore()
        for i in range(10):
            store.append(i * 50.0, "errors", 1.0 if i >= 6 else 0.0)
        return SLOEngine(store, [level_rule(long_window_factor=1.0)])

    def test_sweep_replays_whole_series(self):
        engine = self.make_engine()
        alerts = engine.sweep()
        assert alerts
        assert alerts == sorted(alerts, key=lambda a: a.at_ns)
        assert engine.alerts == alerts

    def test_verdicts_measure_good_fraction(self):
        [(name, good_fraction, met)] = self.make_engine().verdicts()
        assert name == "errors-low"
        assert good_fraction == pytest.approx(0.6)
        assert met  # 0.6 >= the 0.5 objective

    def test_strict_objective_not_met(self):
        engine = self.make_engine()
        engine.rules = [level_rule(objective=0.9)]
        [(_, _, met)] = engine.verdicts()
        assert not met


class TestHealthIntegration:
    class StubHealth:
        """Duck-typed stand-in for the Kona health monitor."""

        def __init__(self):
            self.providers = []

        def add_context_provider(self, provider):
            """Collect providers the way HealthMonitor does."""
            self.providers.append(provider)

    class StubSampler:
        """Appends one bad gauge row when asked to sample."""

        def __init__(self, tsdb):
            self.tsdb = tsdb
            self.forced = 0

        def sample(self):
            """Record the triggering bad sample, like the real one."""
            self.forced += 1
            self.tsdb.append(95.0, "errors", 1.0)

    def test_transition_context_carries_alerts(self):
        store = TimeSeriesStore()
        store.append(10.0, "errors", 0.0)
        sampler = self.StubSampler(store)
        engine = SLOEngine(store, [level_rule(burn_threshold=1.0)],
                           sampler=sampler)
        health = self.StubHealth()
        engine.attach(health)
        [provider] = health.providers
        context = provider("DEGRADED")
        assert sampler.forced == 1
        assert context["alerts"] == [engine.alerts[0].brief()]
        assert context["burn"]["errors-low"] == pytest.approx(1.0, abs=0.5)


class TestControlTowerCampaign:
    def test_degraded_transition_carries_burn_alert(self):
        # The acceptance bar: during the chaos node-failure campaign
        # the SLO engine raises a burn-rate alert *attached to* the
        # DEGRADED health transition, and the campaign still passes.
        from repro.experiments.control import run_control

        report = run_control(seed=0, ops=5_000)
        assert report.result.passed
        degraded = report.degraded_alerts()
        assert degraded
        assert any("burn" in brief for brief in degraded)
        # The sweep also finds alerts beyond the transition instants.
        assert report.alerts
        # And the campaign honestly violates the fault-path SLOs.
        verdicts = dict((name, met) for name, _, met
                        in report.engine.verdicts())
        assert not verdicts["no-degraded-pages"]
        assert verdicts["mttr-ceiling"]
