"""Tests for the analysis/report helpers and paper reference data."""

import pytest

from repro.analysis import TABLE2, paper, render_comparison, render_series, render_table
from repro.common.errors import ConfigError


class TestPaperData:
    def test_table2_has_all_nine_workloads(self):
        assert len(TABLE2) == 9

    def test_amplification_ordering_holds(self):
        # For every workload: 2 MB amp > 4 KB amp > 64 B amp >= 1.
        for name, row in TABLE2.items():
            assert row.amp_2m > row.amp_4k > row.amp_cl >= 1.0, name

    def test_redis_rand_is_the_extreme(self):
        worst = max(TABLE2.values(), key=lambda r: r.amp_4k)
        assert worst is TABLE2["redis-rand"]

    def test_within(self):
        assert paper.within(1.7, (1.4, 2.3))
        assert not paper.within(3.0, (1.4, 2.3))


class TestRendering:
    def test_render_table_aligns(self):
        text = render_table(["a", "bb"], [(1, 2.5), (30, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_table_title(self):
        text = render_table(["x"], [(1,)], title="Table 2")
        assert text.splitlines()[0] == "Table 2"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            render_table(["a", "b"], [(1,)])

    def test_render_series(self):
        text = render_series([(1, 10.0), (2, 20.0)], "n", "goodput")
        assert "goodput" in text
        assert "20.0" in text

    def test_render_comparison(self):
        text = render_comparison({"amp": 30.1}, {"amp": 31.36})
        assert "measured" in text and "paper" in text

    def test_number_formatting(self):
        text = render_table(["v"], [(5516.37,), (0.08,), (31.4,)])
        assert "5,516" in text
        assert "0.08" in text
        assert "31.4" in text
