"""Tests for physical regions and the CMem/FMem/VFMem layout."""

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import AddressError, ConfigError
from repro.mem.physical import AddressSpaceLayout, MemoryKind, PhysicalRegion


class TestPhysicalRegion:
    def test_create(self):
        r = PhysicalRegion.create(MemoryKind.CMEM, 0, 8 * u.MB)
        assert r.size == 8 * u.MB
        assert r.num_pages == 2048

    def test_unaligned_start_rejected(self):
        with pytest.raises(ConfigError):
            PhysicalRegion.create(MemoryKind.CMEM, 100, 4096)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            PhysicalRegion.create(MemoryKind.CMEM, 0, 0)

    def test_backed_read_write(self):
        r = PhysicalRegion.create(MemoryKind.FMEM, 0, 4096, backed=True)
        r.write(64, np.arange(4, dtype=np.uint8))
        assert list(r.read(64, 4)) == [0, 1, 2, 3]

    def test_unbacked_read_rejected(self):
        r = PhysicalRegion.create(MemoryKind.FMEM, 0, 4096)
        with pytest.raises(AddressError):
            r.read(0, 8)

    def test_write_overrun_rejected(self):
        r = PhysicalRegion.create(MemoryKind.FMEM, 0, 4096, backed=True)
        with pytest.raises(AddressError):
            r.write(4090, np.zeros(10, dtype=np.uint8))

    def test_snapshot_is_independent(self):
        r = PhysicalRegion.create(MemoryKind.FMEM, 0, 4096, backed=True)
        snap = r.snapshot()
        r.write(0, np.array([7], dtype=np.uint8))
        assert snap[0] == 0
        assert r.view()[0] == 7


class TestAddressSpaceLayout:
    def test_regions_are_disjoint(self):
        layout = AddressSpaceLayout(cmem_size=64 * u.MB, fmem_size=16 * u.MB,
                                    vfmem_size=64 * u.MB)
        assert not layout.cmem.range.overlaps(layout.vfmem.range)
        assert not layout.vfmem.range.overlaps(layout.fmem.range)

    def test_region_of(self):
        layout = AddressSpaceLayout(64 * u.MB, 16 * u.MB, 64 * u.MB)
        assert layout.region_of(0) is layout.cmem
        assert layout.region_of(layout.vfmem.range.start) is layout.vfmem
        with pytest.raises(AddressError):
            layout.region_of(10 * u.GB * 100)

    def test_only_vfmem_is_tracked(self):
        # Paper section 4.3: the FPGA cannot track CMem.
        layout = AddressSpaceLayout(64 * u.MB, 16 * u.MB, 64 * u.MB)
        assert layout.is_tracked(layout.vfmem.range.start)
        assert not layout.is_tracked(0)
        assert not layout.is_tracked(layout.fmem.range.start)

    def test_vfmem_smaller_than_fmem_rejected(self):
        with pytest.raises(ConfigError):
            AddressSpaceLayout(64 * u.MB, 64 * u.MB, 16 * u.MB)

    def test_unaligned_sizes_rejected(self):
        with pytest.raises(ConfigError):
            AddressSpaceLayout(100, 16 * u.MB, 64 * u.MB)
