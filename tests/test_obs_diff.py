"""Tests for the run-to-run diff and the bench baseline gate."""

import math

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import ConfigError
from repro.kona.config import KonaConfig
from repro.kona.runtime import KonaRuntime
from repro.obs import (
    DiffEntry,
    FlightRecorder,
    bench_regressions,
    diff_bench,
    diff_runs,
    load_artifact,
    profile,
    run_artifact,
    save_artifact,
)


def traced_run(seed=3):
    """One small traced runtime run; returns its artifact."""
    recorder = FlightRecorder(tracing=True, sample_interval_ns=10_000.0)
    rt = KonaRuntime(KonaConfig(fmem_capacity=4 * u.MB,
                                vfmem_capacity=64 * u.MB,
                                slab_bytes=16 * u.MB),
                     app_ns_per_access=70.0, recorder=recorder)
    region = rt.mmap(16 * u.MB)
    rng = np.random.default_rng(seed)
    addrs = (region.start
             + rng.integers(0, 16 * u.MB // u.CACHE_LINE, size=4_000)
             * u.CACHE_LINE)
    rt.run_trace(addrs.astype(np.int64), rng.random(4_000) < 0.4)
    return run_artifact(recorder, profile=profile(recorder.tracer.events),
                        meta={"seed": seed})


class TestDiffEntry:
    def test_delta_and_rel(self):
        entry = DiffEntry("metric", "x", 100.0, 110.0)
        assert entry.delta == 10.0
        assert entry.rel_change == pytest.approx(0.10)

    def test_new_value_is_inf(self):
        assert math.isinf(DiffEntry("metric", "x", 0.0, 5.0).rel_change)
        assert DiffEntry("metric", "x", 0.0, 0.0).rel_change == 0.0


class TestDiffRuns:
    def test_identical_artifacts_are_clean(self):
        artifact = traced_run()
        report = diff_runs(artifact, artifact)
        assert report.clean
        assert report.significant == []
        assert report.noise  # everything compared, nothing moved

    def test_identical_seed_runs_are_clean(self):
        # The anchor property: two runs of the same seed diff to zero
        # significant deltas (simulation is deterministic end to end).
        assert diff_runs(traced_run(seed=5), traced_run(seed=5)).clean

    def test_moved_metric_is_significant(self):
        before, after = traced_run(), traced_run()
        key = next(iter(after["metrics"]))
        after["metrics"][key] = before["metrics"][key] * 2 + 10
        report = diff_runs(before, after)
        assert not report.clean
        assert any(e.name == key for e in report.significant)

    def test_below_threshold_is_noise(self):
        before = {"format": "repro-run-artifact", "version": 1,
                  "metrics": {"x": 1000.0}, "histograms": {}, "meta": {}}
        after = {"format": "repro-run-artifact", "version": 1,
                 "metrics": {"x": 1004.0}, "histograms": {}, "meta": {}}
        report = diff_runs(before, after, rel_tol=0.01)
        assert report.clean
        assert report.noise[0].delta == 4.0

    def test_missing_key_reported(self):
        before, after = traced_run(), traced_run()
        key = next(iter(after["metrics"]))
        del after["metrics"][key]
        report = diff_runs(before, after)
        assert not report.clean
        assert f"metric:{key}" in report.missing

    def test_histogram_quantile_shift_detected(self):
        before, after = traced_run(), traced_run()
        name = next(iter(after["histograms"]))
        after["histograms"][name]["p99"] *= 4.0
        report = diff_runs(before, after)
        assert any(e.name == f"{name}.p99" for e in report.significant)

    def test_negative_tolerance_raises(self):
        with pytest.raises(ConfigError):
            diff_runs({}, {}, rel_tol=-1.0)

    def test_to_json_shape(self):
        report = diff_runs(traced_run(), traced_run())
        payload = report.to_json()
        assert payload["clean"] is True
        assert payload["significant"] == []
        assert payload["noise_count"] == len(report.noise)


class TestArtifacts:
    def test_artifact_contents(self):
        artifact = traced_run()
        assert artifact["format"] == "repro-run-artifact"
        assert "fetch.cache_misses" in artifact["metrics"]
        assert "kona_access_stall_ns" in artifact["histograms"]
        assert artifact["total_ns"] > 0
        assert artifact["self_time_ns"]

    def test_save_load_roundtrip(self, tmp_path):
        artifact = traced_run()
        path = save_artifact(artifact, str(tmp_path / "run.json"))
        assert load_artifact(path) == artifact

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"benchmark": "something-else"}\n')
        with pytest.raises(ConfigError):
            load_artifact(str(path))


def bench_payload(speedups, benchmark="kona-runtime-engine-bench"):
    return {"benchmark": benchmark,
            "cases": [{"workload": w, "speedup": s}
                      for w, s in speedups.items()]}


class TestDiffBench:
    def test_within_tolerance_passes(self):
        deltas = diff_bench(bench_payload({"hot-mix": 6.0}),
                            bench_payload({"hot-mix": 4.0}), tolerance=0.5)
        assert not deltas[0].regressed
        assert bench_regressions(deltas) == []

    def test_regression_detected(self):
        deltas = diff_bench(bench_payload({"hot-mix": 6.0}),
                            bench_payload({"hot-mix": 2.0}), tolerance=0.5)
        assert deltas[0].regressed
        assert deltas[0].floor == pytest.approx(3.0)
        assert "hot-mix" in bench_regressions(deltas)[0]

    def test_only_common_workloads_compared(self):
        deltas = diff_bench(
            bench_payload({"hot-mix": 6.0, "old-case": 2.0}),
            bench_payload({"hot-mix": 6.0, "new-case": 9.0}))
        assert [d.workload for d in deltas] == ["hot-mix"]

    def test_benchmark_mismatch_raises(self):
        with pytest.raises(ConfigError):
            diff_bench(bench_payload({"a": 1.0}, benchmark="x"),
                       bench_payload({"a": 1.0}, benchmark="y"))

    def test_no_common_workloads_raises(self):
        with pytest.raises(ConfigError):
            diff_bench(bench_payload({"a": 1.0}),
                       bench_payload({"b": 1.0}))

    def test_invalid_tolerance_raises(self):
        with pytest.raises(ConfigError):
            diff_bench(bench_payload({"a": 1.0}),
                       bench_payload({"a": 1.0}), tolerance=1.0)
