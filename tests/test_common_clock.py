"""Tests for the discrete-event simulation core."""

import pytest

from repro.common.clock import Account, EventQueue, SimClock
from repro.common.errors import SimulationError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(10.0) == 10.0
        assert clock.now == 10.0

    def test_advance_negative_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock(5.0)
        clock.advance_to(20.0)
        assert clock.now == 20.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)


class TestEventQueue:
    def test_events_run_in_time_order(self):
        q = EventQueue()
        order = []
        q.schedule(30, lambda: order.append("c"))
        q.schedule(10, lambda: order.append("a"))
        q.schedule(20, lambda: order.append("b"))
        q.run()
        assert order == ["a", "b", "c"]
        assert q.clock.now == 30

    def test_ties_run_in_schedule_order(self):
        q = EventQueue()
        order = []
        q.schedule(10, lambda: order.append(1))
        q.schedule(10, lambda: order.append(2))
        q.run()
        assert order == [1, 2]

    def test_cancel(self):
        q = EventQueue()
        fired = []
        handle = q.schedule(10, lambda: fired.append(1))
        handle.cancel()
        q.run()
        assert fired == []

    def test_run_until_stops_early_and_advances_clock(self):
        q = EventQueue()
        fired = []
        q.schedule(10, lambda: fired.append(1))
        q.schedule(50, lambda: fired.append(2))
        q.run(until=25)
        assert fired == [1]
        assert q.clock.now == 25

    def test_events_can_schedule_events(self):
        q = EventQueue()
        fired = []

        def first():
            fired.append("first")
            q.schedule(5, lambda: fired.append("second"))

        q.schedule(10, first)
        q.run()
        assert fired == ["first", "second"]
        assert q.clock.now == 15

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.clock.advance(100)
        with pytest.raises(SimulationError):
            q.schedule_at(50, lambda: None)

    def test_runaway_loop_guard(self):
        q = EventQueue()

        def reschedule():
            q.schedule(1, reschedule)

        q.schedule(1, reschedule)
        with pytest.raises(SimulationError):
            q.run(max_events=100)

    def test_len_counts_live_events(self):
        q = EventQueue()
        h1 = q.schedule(10, lambda: None)
        q.schedule(20, lambda: None)
        assert len(q) == 2
        h1.cancel()
        assert len(q) == 1


class TestAccount:
    def test_charge_and_total(self):
        acc = Account()
        acc.charge("copy", 10)
        acc.charge("copy", 5)
        acc.charge("rdma", 20)
        assert acc["copy"] == 15
        assert acc.total == 35

    def test_negative_charge_rejected(self):
        with pytest.raises(SimulationError):
            Account().charge("x", -1)

    def test_fractions_sum_to_one(self):
        acc = Account()
        acc.charge("a", 30)
        acc.charge("b", 70)
        fractions = acc.fractions()
        assert fractions["a"] == pytest.approx(0.3)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_fractions(self):
        assert Account().fractions() == {}

    def test_merge(self):
        a, b = Account(), Account()
        a.charge("x", 1)
        b.charge("x", 2)
        b.charge("y", 3)
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 3

    def test_missing_bucket_is_zero(self):
        assert Account()["nothing"] == 0.0
