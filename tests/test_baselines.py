"""Tests for the baseline system models."""

import numpy as np
import pytest

import repro.common.units as u
from repro.baselines import infiniswap, kona_vm, kona_vm_no_evict, kona_vm_no_wp, legoos
from repro.common.latency import DEFAULT_LATENCY
from repro.workloads.synthetic import one_line_per_page


class TestFetchLatencies:
    def test_infiniswap_fetch_lands_at_40us(self):
        # Section 2.1: "we measured Infiniswap's remote access latency
        # to be over 40us".
        engine = infiniswap(64 * u.MB)
        cost = engine.access(0, False)
        assert 36_000 <= cost <= 46_000

    def test_legoos_fetch_lands_at_10us(self):
        engine = legoos(64 * u.MB)
        cost = engine.access(0, False)
        assert 8_500 <= cost <= 12_000

    def test_kona_vm_cheaper_than_infiniswap(self):
        # Section 6.1: Kona-VM is similar to or faster than Infiniswap
        # (userfaultfd beats the block layer).
        vm_cost = kona_vm(64 * u.MB).access(0, False)
        swap_cost = infiniswap(64 * u.MB).access(0, False)
        assert vm_cost < swap_cost

    def test_ordering(self):
        vm = kona_vm(64 * u.MB).access(0, False)
        lego = legoos(64 * u.MB).access(0, False)
        swap = infiniswap(64 * u.MB).access(0, False)
        assert vm < swap and lego < swap


class TestInfiniswapEviction:
    def test_eviction_exceeds_32us(self):
        # Section 2.1: eviction latencies over 32us on Infiniswap.
        engine = infiniswap(u.PAGE_4K)   # capacity: one page
        engine.access(0, True)           # dirty it
        cost = engine.access(u.PAGE_4K, False)   # forces dirty eviction
        evict_cost = (engine.account["evict_software"]
                      + engine.account["evict_transfer"])
        assert evict_cost >= 30_000

    def test_infiniswap_evicts_synchronously(self):
        engine = infiniswap(u.PAGE_4K)
        engine.access(0, True)
        engine.access(u.PAGE_4K, False)
        assert engine.account["evict_background"] == 0.0


class TestKonaVmVariants:
    def test_no_evict_never_evicts(self):
        addrs, writes = one_line_per_page(4 * u.MB)[0]
        engine = kona_vm_no_evict(4 * u.MB)
        report = engine.run(addrs, writes)
        assert report.counters["evictions"] == 0

    def test_no_wp_faster_but_incomplete(self):
        addrs, writes = one_line_per_page(4 * u.MB)[0]
        wp = kona_vm_no_evict(4 * u.MB)
        nowp = kona_vm_no_wp(4 * u.MB)
        r_wp = wp.run(addrs, writes)
        r_nowp = nowp.run(addrs.copy(), writes)
        assert r_nowp.elapsed_ns < r_wp.elapsed_ns
        # Incomplete: it cannot report dirty pages.
        assert r_nowp.counters["pages_dirtied"] == 0

    def test_page_amplification_is_64x_on_microbenchmark(self):
        # One dirty line per page, whole page written back: 64X.
        engine = kona_vm(2 * u.MB)
        addrs, writes = one_line_per_page(4 * u.MB)[0]
        report = engine.run(addrs, writes)
        assert report.dirty_amplification == pytest.approx(64.0)
