"""Tests for KTracker: snapshot-diff tracking, Figure 9/10 and section 6.3."""

import numpy as np
import pytest

import repro.common.units as u
from repro.analysis import paper
from repro.common.errors import ConfigError
from repro.tools.ktracker import (
    NATIVE_DIRTY_PAGE_RATE,
    KTracker,
    redis_rand_ktracker,
    redis_seq_ktracker,
)
from repro.workloads import WORKLOADS, make_trace


def simple_trace(memory=1 * u.MB):
    # Window 0: write one word in each of two pages.
    addrs = np.array([0, u.PAGE_4K], dtype=np.uint64)
    sizes = np.array([8, 8], dtype=np.uint32)
    writes = np.ones(2, dtype=bool)
    windows = np.zeros(2, dtype=np.uint32)
    return make_trace(addrs, sizes, writes, windows, memory, "simple")


class TestMechanics:
    def test_detects_changed_lines(self):
        tracker = KTracker(1 * u.MB, redundant_write_fraction=0.0)
        report = tracker.run(simple_trace())
        w = report.windows[0]
        assert w.written_pages == 2
        assert w.changed_lines == 2
        assert w.changed_pages == 2

    def test_redundant_writes_invisible_to_diff(self):
        tracker = KTracker(1 * u.MB, redundant_write_fraction=0.9999)
        report = tracker.run(simple_trace())
        w = report.windows[0]
        assert w.written_pages == 2        # WP mode still sees them
        assert w.changed_lines == 0        # content diff does not

    def test_ratio_is_page_over_line_bytes(self):
        tracker = KTracker(1 * u.MB, redundant_write_fraction=0.0)
        report = tracker.run(simple_trace())
        assert report.windows[0].page_vs_line_ratio == pytest.approx(64.0)

    def test_diff_cost_positive(self):
        tracker = KTracker(1 * u.MB)
        report = tracker.run(simple_trace())
        assert report.windows[0].diff_ns > 0

    def test_invalid_memory_rejected(self):
        with pytest.raises(ConfigError):
            KTracker(100)

    def test_invalid_redundancy_rejected(self):
        with pytest.raises(ConfigError):
            KTracker(1 * u.MB, redundant_write_fraction=1.5)


@pytest.mark.slow
class TestFigure9:
    def test_redis_rand_band(self):
        wl = redis_rand_ktracker(memory_bytes=64 * u.MB)
        trace = wl.generate(windows=30, seed=5)
        tracker = KTracker(wl.memory_bytes)
        report = tracker.run(trace)
        steady = [r for w, r in report.ratio_series()
                  if w >= wl.startup_windows]
        lo, hi = paper.FIG9_REDIS_RAND_BAND
        inside = [r for r in steady if lo <= r <= hi]
        # The band fluctuates; most windows must land inside 2-10X.
        assert len(inside) >= 0.7 * len(steady)
        assert max(steady) / min(steady) > 2.0     # it really fluctuates

    def test_redis_seq_about_2x(self):
        wl = redis_seq_ktracker(memory_bytes=32 * u.MB)
        trace = wl.generate(windows=20, seed=5)
        report = KTracker(wl.memory_bytes).run(trace)
        steady = [r for w, r in report.ratio_series()
                  if w >= wl.startup_windows]
        mean = sum(steady) / len(steady)
        assert 1.5 <= mean <= 3.2

    def test_startup_windows_look_alike(self):
        # Figure 9: the first ~10 windows (startup) are similar for
        # both workloads (bulk population, amp ~ 1).
        rand = redis_rand_ktracker(memory_bytes=32 * u.MB)
        seq = redis_seq_ktracker(memory_bytes=32 * u.MB)
        r_rand = KTracker(rand.memory_bytes).run(rand.generate(12, seed=0))
        r_seq = KTracker(seq.memory_bytes).run(seq.generate(12, seed=0))
        early_rand = r_rand.windows[0].page_vs_line_ratio
        early_seq = r_seq.windows[0].page_vs_line_ratio
        assert early_rand == pytest.approx(early_seq, rel=0.2)


class TestFigure10:
    @pytest.mark.parametrize("name,band", sorted(paper.FIG10_SPEEDUP_PCT.items()))
    def test_speedup_bands(self, name, band):
        wl = WORKLOADS[name]()
        trace = wl.generate(windows=2, seed=0)
        report = KTracker(wl.memory_bytes).run(trace, name=name)
        speedup = report.tracking_speedup_percent()
        assert band[0] <= speedup <= band[1], (name, speedup)

    def test_range_matches_paper_text(self):
        # "The speedup ranges from 1% (Redis-seq and Histogram) to 35%
        # (Redis-rand)."
        speedups = {}
        for name in paper.FIG10_SPEEDUP_PCT:
            wl = WORKLOADS[name]()
            trace = wl.generate(windows=2, seed=0)
            report = KTracker(wl.memory_bytes).run(trace, name=name)
            speedups[name] = report.tracking_speedup_percent()
        assert max(speedups, key=speedups.get) == "redis-rand"
        assert min(speedups.values()) >= 0.3
        assert 30.0 <= speedups["redis-rand"] <= 38.0


class TestSection63Overhead:
    def test_emulation_overhead_dominated_by_diffing(self):
        wl = redis_rand_ktracker(memory_bytes=32 * u.MB)
        trace = wl.generate(windows=15, seed=2)
        report = KTracker(wl.memory_bytes).run(trace)
        # Native Redis-Rand resident set is 4 GB (Table 2).
        overhead = report.emulation_overhead_fraction(4 * u.GB)
        # Section 6.3(3): ~60% throughput loss, 95% of it from copying
        # and comparing memory, ~5% from ptrace.
        assert overhead["diff_share"] > paper.KTRACKER_DIFF_SHARE_MIN
        assert overhead["ptrace_share"] < 0.15
        assert paper.within(overhead["loss"], paper.KTRACKER_LOSS)
