"""Tests for multi-tenant trace composition."""

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import ConfigError
from repro.tools.pintool import analyze
from repro.workloads import redis_rand, redis_seq, voltdb_tpcc
from repro.workloads.mixer import (
    footprint_summary,
    interleave,
    per_tenant_slice,
)


@pytest.fixture(scope="module")
def composed():
    models = [redis_rand(), redis_seq()]
    trace, placements = interleave(models, windows=3, seed=4)
    return models, trace, placements


class TestInterleave:
    def test_partitions_are_disjoint(self, composed):
        _, _, placements = composed
        a, b = placements
        assert a.base + a.size <= b.base

    def test_partitions_hugepage_aligned_gap(self, composed):
        _, _, placements = composed
        for p in placements:
            assert p.base % u.PAGE_2M == 0

    def test_all_accesses_inside_some_partition(self, composed):
        _, trace, placements = composed
        addrs = trace.addrs
        covered = np.zeros(len(trace), dtype=bool)
        for p in placements:
            covered |= ((addrs >= p.base) & (addrs < p.base + p.size))
        assert covered.all()

    def test_windows_aligned(self, composed):
        _, trace, _ = composed
        assert trace.num_windows == 3

    def test_tenant_accesses_interleave_within_window(self, composed):
        _, trace, placements = composed
        window0 = trace.window_slice(0)
        first, second = placements
        in_first = window0.addrs < np.uint64(first.base + first.size)
        # Not all of tenant 0's accesses come before tenant 1's.
        assert in_first[:100].sum() not in (0, 100)

    def test_empty_tenant_list_rejected(self):
        with pytest.raises(ConfigError):
            interleave([])


class TestRoundTrip:
    def test_slice_recovers_tenant_trace(self, composed):
        models, trace, placements = composed
        sliced = per_tenant_slice(trace, placements[0])
        original = models[0].generate(windows=3, seed=4)
        assert len(sliced) == len(original)
        # Same multiset of accesses (order differs by the shuffle).
        assert sorted(sliced.addrs.tolist()) == sorted(
            original.addrs.tolist())

    def test_per_tenant_amplification_preserved(self, composed):
        """Composition must not distort a tenant's Table 2 statistics."""
        models, trace, placements = composed
        rand_model = models[0]
        sliced = per_tenant_slice(trace, placements[0])
        solo = analyze(rand_model.generate(windows=3, seed=4))
        mixed = analyze(sliced)
        solo_amp = solo.mean_amplification(skip_first=2, skip_last=0)
        mixed_amp = mixed.mean_amplification(skip_first=2, skip_last=0)
        assert mixed_amp["4k"] == pytest.approx(solo_amp["4k"], rel=1e-9)

    def test_footprint_summary(self, composed):
        _, _, placements = composed
        shares = footprint_summary(placements)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["redis-rand"] > shares["redis-seq"]


class TestThreeTenants:
    def test_three_way_mix(self):
        trace, placements = interleave(
            [redis_rand(), redis_seq(), voltdb_tpcc()], windows=2, seed=1)
        assert len(placements) == 3
        assert len({p.base for p in placements}) == 3
        report = analyze(trace)
        assert len(report.windows) == 2
