"""Tests for the runtime health state machine."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import SimulationError
from repro.kona.health import HealthMonitor, HealthState


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def monitor(clock):
    return HealthMonitor(clock)


class TestTransitions:
    def test_starts_healthy(self, monitor):
        assert monitor.state is HealthState.HEALTHY
        assert monitor.healthy

    def test_full_cycle_records_incident(self, monitor, clock):
        clock.advance(100)
        monitor.degrade("node down")
        clock.advance(500)
        monitor.start_recovery()
        clock.advance(200)
        monitor.recovered()
        assert monitor.healthy
        assert len(monitor.incidents) == 1
        incident = monitor.incidents[0]
        assert incident.reason == "node down"
        assert incident.mttr_ns == 700
        assert monitor.mttr_ns == 700

    def test_degrade_is_idempotent(self, monitor):
        monitor.degrade("first")
        monitor.degrade("second")
        assert monitor.counters["degradations"] == 1
        assert monitor.counters["repeat_faults"] == 1

    def test_relapse_while_recovering(self, monitor):
        monitor.degrade("fault")
        monitor.start_recovery()
        monitor.degrade("second fault mid-drain")
        assert monitor.state is HealthState.DEGRADED

    def test_illegal_transition_rejected(self, monitor):
        with pytest.raises(SimulationError):
            monitor.recovered()          # HEALTHY -> HEALTHY is illegal
        monitor.degrade("fault")
        with pytest.raises(SimulationError):
            monitor.recovered()          # must pass through RECOVERING


class TestTimeAccounting:
    def test_time_in_state_uses_simulated_clock(self, monitor, clock):
        clock.advance(100)
        monitor.degrade("fault")
        clock.advance(300)
        monitor.start_recovery()
        clock.advance(50)
        monitor.recovered()
        assert monitor.time_in_ns(HealthState.DEGRADED) == 300
        assert monitor.time_in_ns(HealthState.RECOVERING) == 50
        assert monitor.time_in_degraded_ns == 350

    def test_open_state_accrues(self, monitor, clock):
        monitor.degrade("fault")
        clock.advance(40)
        assert monitor.time_in_ns(HealthState.DEGRADED) == 40

    def test_mttr_zero_without_incidents(self, monitor):
        assert monitor.mttr_ns == 0.0
