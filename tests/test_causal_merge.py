"""Merge algebra of the causal fault plane: sharded == monolithic.

Satellite contract: fault-log, histogram and tsdb merges across random
page-modulo shardings and random chunkings reproduce the monolithic
aggregates bit-exactly.  Two layers of evidence:

* **synthetic streams** — the same record stream partitioned into K
  captures (with random mid-stream drains) merges back to the exact
  aggregate of one capture that saw everything;
* **real runtimes** — a streamed replay under any 256-multiple
  chunking emits the exact record stream of a monolithic run, and a
  page-modulo sharded run's per-shard logs merge into the exact sum
  of their parts.
"""

from dataclasses import replace

import numpy as np
import pytest

import repro.common.units as u
from repro.common import units
from repro.kona import KonaConfig, KonaRuntime
from repro.obs.causal import CausalCapture, FaultLog
from repro.obs.registry import HistogramMetric
from repro.obs.tsdb import TimeSeriesStore
from repro.workloads.trace import generate_hot_mix_stream

NODES = (None, "mem0", "mem1", "mem2")
HEALTH = ("HEALTHY", "DEGRADED", "RECOVERING")


def synthetic_records(seed, n=2_000):
    """(seq, line, node, kind, dir, fab, mem, repl, health) tuples.

    Hop costs are integer-valued floats plus the real fractional
    remote-read constant, so spectra exercise both exact and
    fractional value-count merging.
    """
    rng = np.random.default_rng(seed)
    records = []
    health = "HEALTHY"
    for seq in range(n):
        if rng.random() < 0.01:
            health = HEALTH[rng.integers(0, 3)]
        line = int(rng.integers(0, 1 << 20)) * u.CACHE_LINE
        if rng.random() < 0.7:
            records.append((seq, line, None, 0, 0.0, 0.0, 220.0, 0.0,
                            health))
        else:
            node = NODES[1 + rng.integers(0, 3)]
            repl = float(rng.integers(0, 4) * 10_000) \
                if rng.random() < 0.1 else 0.0
            records.append((seq, line, node, 1, 70.0, 1519.32, 0.0,
                            repl, health))
    return records


def feed(cap, records, drain_points=()):
    """Replay synthetic records into one capture, draining mid-stream."""
    drains = set(drain_points)
    for i, (seq, line, node, kind, d, f, m, repl, health) in \
            enumerate(records):
        cap.on_health(health)
        if repl:
            cap._repl_ns = repl
            cap._used_replica = True
        cap.record(seq, line, node, kind, d, f, m)
        if i in drains:
            cap.flush()
    return cap.log


class TestSyntheticPartitionInvariance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("num_shards", [2, 3, 5])
    def test_page_modulo_sharding_merges_bit_exactly(self, seed,
                                                     num_shards):
        records = synthetic_records(seed)
        rng = np.random.default_rng(seed + 100)
        mono = feed(CausalCapture(), records,
                    drain_points=rng.integers(0, len(records), 3))
        shards = [CausalCapture() for _ in range(num_shards)]
        parts = [[] for _ in range(num_shards)]
        for rec in records:
            page = rec[1] // units.PAGE_4K
            parts[page % num_shards].append(rec)
        merged = FaultLog()
        for shard, part in zip(shards, parts):
            drains = rng.integers(0, max(len(part), 1), 2)
            merged.merge(feed(shard, part, drain_points=drains))
        assert merged.aggregate() == mono.aggregate()

    def test_merge_order_does_not_matter(self):
        records = synthetic_records(7)
        parts = [[], [], []]
        for rec in records:
            parts[(rec[1] // units.PAGE_4K) % 3].append(rec)
        logs = [feed(CausalCapture(), p) for p in parts]
        fwd, rev = FaultLog(), FaultLog()
        for log in logs:
            fwd.merge(log)
        for log in reversed(logs):
            rev.merge(log)
        assert fwd.aggregate() == rev.aggregate()

    @pytest.mark.parametrize("seed", [3, 4])
    def test_random_chunking_merges_bit_exactly(self, seed):
        records = synthetic_records(seed)
        mono = feed(CausalCapture(), records)
        rng = np.random.default_rng(seed)
        cuts = sorted(rng.integers(1, len(records), 6))
        merged = FaultLog()
        for a, b in zip([0, *cuts], [*cuts, len(records)]):
            merged.merge(feed(CausalCapture(), records[a:b]))
        assert merged.aggregate() == mono.aggregate()


class TestHistogramChunking:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_random_chunking_reproduces_monolithic(self, seed):
        rng = np.random.default_rng(seed)
        # Integer-valued observations: partial sums are exact, so the
        # merged histogram is bit-identical, not just approximate.
        values = rng.integers(1, 1 << 20, size=4_000).astype(float)
        mono = HistogramMetric()
        for v in values:
            mono.observe(v)
        cuts = sorted(rng.integers(1, values.size, 5))
        merged = HistogramMetric()
        for a, b in zip([0, *cuts], [*cuts, values.size]):
            part = HistogramMetric()
            for v in values[a:b]:
                part.observe(v)
            merged.merge(part)
        assert merged._buckets == mono._buckets
        assert merged.count == mono.count
        assert merged.sum == mono.sum
        assert merged.min == mono.min and merged.max == mono.max
        for q in (0.5, 0.9, 0.99):
            assert merged.quantile(q) == mono.quantile(q)


class TestTsdbChunking:
    @pytest.mark.parametrize("seed", [0, 6])
    def test_chunk_base_realignment_reproduces_monolithic(self, seed):
        rng = np.random.default_rng(seed)
        stamps = np.cumsum(rng.integers(1, 50, size=300)).astype(float)
        names = ("gauge.a", "gauge.b")
        mono = TimeSeriesStore()
        for ts in stamps:
            for name in names:
                mono.append(ts, name, float(int(ts) % 97))
        cuts = sorted(rng.integers(1, stamps.size, 4))
        merged = TimeSeriesStore()
        for a, b in zip([0, *cuts], [*cuts, stamps.size]):
            chunk = TimeSeriesStore()
            base = stamps[a - 1] if a else 0.0
            for ts in stamps[a:b]:
                for name in names:
                    # Chunk-local clock: relative to the chunk base.
                    chunk.append(ts - base, name, float(int(ts) % 97))
            merged.merge(chunk, base_ns=base)
        assert merged.as_dict() == mono.as_dict()


def make_runtime():
    cfg = KonaConfig(fmem_capacity=4 * u.MB, vfmem_capacity=32 * u.MB,
                     slab_bytes=1 * u.MB)
    return KonaRuntime(cfg, app_ns_per_access=50.0)


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("causal") / "hot.trace")
    generate_hot_mix_stream(path, 40_000, hot_lines=4096,
                            region_bytes=16 * units.MB, seed=23,
                            chunk_size=1 << 13)
    return path


class TestRealRuntimeChunking:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_any_chunking_matches_monolithic_run(self, seed, trace_dir):
        from repro.workloads.trace import open_columnar
        columnar = open_columnar(trace_dir)
        addrs = columnar.addrs[:].astype(np.int64)
        writes = np.asarray(columnar.writes)

        rt = make_runtime()
        region = rt.mmap(columnar.memory_bytes)
        cap = rt.attach_causal_capture()
        rt.run_trace(addrs + np.int64(region.start), writes)
        mono = cap.log.aggregate()

        rng = np.random.default_rng(seed)
        cuts = np.unique(rng.integers(1, addrs.size // 256, 5)) * 256
        bounds = [0, *cuts.tolist(), addrs.size]
        rt2 = make_runtime()
        region2 = rt2.mmap(columnar.memory_bytes)
        cap2 = rt2.attach_causal_capture()
        chunks = ((addrs[a:b], writes[a:b])
                  for a, b in zip(bounds, bounds[1:]))
        rt2.run_trace_stream(chunks, base=region2.start)
        assert cap2.log.aggregate() == mono


class TestShardedCapture:
    def test_sharded_fault_logs_merge_to_the_sum_of_parts(self,
                                                          trace_dir):
        from repro.experiments.shard import make_shards, run_sharded
        specs = [replace(spec, capture=True)
                 for spec in make_shards(trace_dir, 3, chunk_size=1 << 13,
                                         fmem_mb=4, vfmem_mb=32)]
        result = run_sharded(specs, processes=1)
        logs = [o.fault_log for o in result.outcomes]
        assert all(log is not None for log in logs)
        merged = result.fault_log()
        assert merged.n == sum(log.n for log in logs)
        assert merged.n == result.totals["cache_misses"]
        # Exact algebra: element-wise sums of every spectrum.
        for hop in ("dir", "fab", "mem", "repl", "total"):
            expect = {}
            for log in logs:
                for v, c in log.spectra[hop].items():
                    expect[v] = expect.get(v, 0) + c
            assert merged.spectra[hop] == expect

    def test_sharded_capture_leaves_counters_untouched(self, trace_dir):
        from repro.experiments.shard import make_shards, run_sharded
        plain = run_sharded(make_shards(trace_dir, 2, chunk_size=1 << 13,
                                        fmem_mb=4, vfmem_mb=32),
                            processes=1)
        specs = [replace(spec, capture=True)
                 for spec in make_shards(trace_dir, 2, chunk_size=1 << 13,
                                         fmem_mb=4, vfmem_mb=32)]
        captured = run_sharded(specs, processes=1)
        assert captured.totals.as_dict() == plain.totals.as_dict()
        assert captured.elapsed_ns == plain.elapsed_ns
