"""Tests for address arithmetic."""

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import AddressError, ConfigError
from repro.mem.address import (
    AddressRange,
    align_down,
    align_up,
    is_power_of_two,
    line_in_page,
    line_index,
    line_indices,
    page_index,
    page_indices,
    word_indices,
)


class TestAlignment:
    def test_align_down(self):
        assert align_down(4100, 4096) == 4096
        assert align_down(4096, 4096) == 4096

    def test_align_up(self):
        assert align_up(4097, 4096) == 8192
        assert align_up(4096, 4096) == 4096

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)


class TestIndices:
    def test_page_index(self):
        assert page_index(0) == 0
        assert page_index(4095) == 0
        assert page_index(4096) == 1

    def test_page_index_huge(self):
        assert page_index(u.PAGE_2M, u.PAGE_2M) == 1

    def test_line_index(self):
        assert line_index(63) == 0
        assert line_index(64) == 1

    def test_line_in_page(self):
        assert line_in_page(0) == 0
        assert line_in_page(4096 + 128) == 2
        assert line_in_page(4095) == 63

    def test_vectorized_match_scalar(self):
        addrs = np.array([0, 4095, 4096, 70000], dtype=np.uint64)
        assert list(page_indices(addrs)) == [page_index(int(a)) for a in addrs]
        assert list(line_indices(addrs)) == [line_index(int(a)) for a in addrs]
        assert list(word_indices(addrs)) == [int(a) // 8 for a in addrs]


class TestAddressRange:
    def test_contains(self):
        r = AddressRange(100, 50)
        assert 100 in r
        assert 149 in r
        assert 150 not in r
        assert 99 not in r

    def test_end(self):
        assert AddressRange(0, 10).end == 10

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            AddressRange(-1, 10)
        with pytest.raises(ConfigError):
            AddressRange(0, -1)

    def test_contains_range(self):
        outer = AddressRange(0, 100)
        assert outer.contains_range(AddressRange(10, 20))
        assert not outer.contains_range(AddressRange(90, 20))

    def test_overlaps(self):
        a = AddressRange(0, 10)
        assert a.overlaps(AddressRange(5, 10))
        assert not a.overlaps(AddressRange(10, 5))

    def test_offset_of(self):
        r = AddressRange(1000, 100)
        assert r.offset_of(1050) == 50
        with pytest.raises(AddressError):
            r.offset_of(2000)

    def test_pages(self):
        r = AddressRange(4000, 200)   # spans pages 0 and 1
        assert list(r.pages()) == [0, 1]

    def test_pages_empty(self):
        assert list(AddressRange(0, 0).pages()) == []

    def test_split(self):
        chunks = list(AddressRange(0, 10).split(4))
        assert [(c.start, c.size) for c in chunks] == [(0, 4), (4, 4), (8, 2)]

    def test_split_invalid_chunk(self):
        with pytest.raises(ConfigError):
            list(AddressRange(0, 10).split(0))
