"""Tests for the FPGA reference architecture: bitmap, FMem, translation, agent."""

import pytest

import repro.common.units as u
from repro.cluster.memnode import MemoryNode
from repro.common.errors import AddressError, ConfigError, TranslationError
from repro.coherence.states import LineState
from repro.fpga.agent import AgentConfig, MemoryAgent
from repro.fpga.bitmap import DirtyBitmap
from repro.fpga.fmem import FMemCache
from repro.fpga.translation import RemoteTranslationMap
from repro.mem.address import AddressRange
from repro.net.fabric import Fabric


class TestDirtyBitmap:
    def test_mark_and_count(self):
        b = DirtyBitmap()
        b.mark_line(0)
        b.mark_line(64)
        b.mark_line(64)    # idempotent
        assert b.dirty_line_count(0) == 2
        assert b.total_dirty_lines() == 2
        assert b.total_dirty_bytes() == 128

    def test_unaligned_rejected(self):
        with pytest.raises(AddressError):
            DirtyBitmap().mark_line(13)

    def test_dirty_lines_of(self):
        b = DirtyBitmap()
        b.mark_line(4096 + 128)
        assert b.dirty_lines_of(1) == [4096 + 128]

    def test_clear_page_returns_mask(self):
        b = DirtyBitmap()
        b.mark_line(0)
        b.mark_line(128)
        mask = b.clear_page(0)
        assert mask == 0b101
        assert b.page_mask(0) == 0

    def test_fully_dirty(self):
        b = DirtyBitmap()
        for i in range(64):
            b.mark_line(i * 64)
        assert b.is_fully_dirty(0)
        assert not b.is_fully_dirty(1)

    def test_segments(self):
        b = DirtyBitmap()
        for line in (0, 1, 2, 5, 9, 10):
            b.mark_line(line * 64)
        assert b.segments_of(0) == [(0, 3), (5, 1), (9, 2)]

    def test_dirty_pages_iteration(self):
        b = DirtyBitmap()
        b.mark_line(0)
        b.mark_line(3 * 4096)
        assert sorted(b.dirty_pages()) == [0, 3]


class TestFMemCache:
    def test_page_granularity(self):
        f = FMemCache(64 * u.KB)
        hit, _ = f.touch(0)
        assert not hit
        hit, _ = f.touch(4095)   # same page
        assert hit

    def test_lookup_is_pure(self):
        f = FMemCache(64 * u.KB)
        assert not f.lookup(0)
        f.touch(0)
        assert f.lookup(0)

    def test_eviction_reports_victim_page(self):
        f = FMemCache(4 * u.PAGE_4K, ways=4)   # one set of 4 pages
        for i in range(4):
            f.touch(i * u.PAGE_4K)
        _, eviction = f.touch(4 * u.PAGE_4K)
        assert eviction is not None
        assert eviction.vfmem_page_addr == 0

    def test_drop(self):
        f = FMemCache(64 * u.KB)
        f.touch(0)
        assert f.drop(0)
        assert not f.lookup(0)
        assert not f.drop(0)

    def test_capacity_rounds_to_power_of_two_sets(self):
        f = FMemCache(3 * 4 * u.PAGE_4K)    # 3 sets -> rounds down to 2
        assert f.num_frames == 8

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            FMemCache(u.PAGE_4K)


class TestRemoteTranslation:
    def _map_with_slab(self):
        fabric = Fabric()
        node = MemoryNode("m0", 64 * u.MB, fabric, slab_bytes=16 * u.MB)
        tmap = RemoteTranslationMap(vfmem_base=0, slab_bytes=16 * u.MB)
        slab = node.grant_slab()
        tmap.bind(0, slab)
        return tmap, slab, node

    def test_resolve_offsets(self):
        tmap, slab, _ = self._map_with_slab()
        loc = tmap.resolve(4096 + 64)
        assert loc.node == "m0"
        assert loc.remote_addr == slab.remote_range.start + 4096 + 64

    def test_unbound_address_rejected(self):
        tmap, _, _ = self._map_with_slab()
        with pytest.raises(TranslationError):
            tmap.resolve(20 * u.MB)

    def test_double_bind_rejected(self):
        tmap, _, node = self._map_with_slab()
        with pytest.raises(TranslationError):
            tmap.bind(0, node.grant_slab())

    def test_unaligned_bind_rejected(self):
        tmap, _, node = self._map_with_slab()
        with pytest.raises(TranslationError):
            tmap.bind(4096, node.grant_slab())

    def test_replicas(self):
        fabric = Fabric()
        n0 = MemoryNode("m0", 32 * u.MB, fabric, slab_bytes=16 * u.MB)
        n1 = MemoryNode("m1", 32 * u.MB, fabric, slab_bytes=16 * u.MB)
        tmap = RemoteTranslationMap(0, 16 * u.MB)
        tmap.bind(0, n0.grant_slab(), replicas=[n1.grant_slab()])
        locations = tmap.resolve_replicas(128)
        assert [loc.node for loc in locations] == ["m0", "m1"]

    def test_unbind(self):
        tmap, slab, _ = self._map_with_slab()
        primary, replicas = tmap.unbind(0)
        assert primary is slab
        assert replicas == []
        with pytest.raises(TranslationError):
            tmap.resolve(0)


class TestMemoryAgent:
    def _agent(self, fmem_capacity=16 * u.PAGE_4K, **agent_kwargs):
        vfmem = AddressRange(0, 16 * u.MB)
        fabric = Fabric()
        node = MemoryNode("m0", 64 * u.MB, fabric, slab_bytes=16 * u.MB)
        tmap = RemoteTranslationMap(0, 16 * u.MB)
        tmap.bind(0, node.grant_slab())
        fmem = FMemCache(fmem_capacity)
        config = AgentConfig(**agent_kwargs) if agent_kwargs else None
        return MemoryAgent(vfmem, fmem, tmap, config=config)

    def test_fill_miss_fetches_remote(self):
        agent = self._agent()
        agent.directory.get_shared(0, 1)
        assert agent.counters["remote_fetches"] == 1
        assert agent.last_access_ns > agent.latency.fmem_ns

    def test_fill_hit_served_from_fmem(self):
        agent = self._agent()
        agent.directory.get_shared(0, 1)
        agent.directory.get_shared(64, 1)    # same page
        assert agent.counters["fmem_hits"] == 1
        assert agent.last_access_ns == agent.latency.fmem_ns

    def test_writeback_marks_bitmap(self):
        agent = self._agent()
        agent.directory.get_modified(0, 1)
        agent.directory.put_modified(0, 1)
        assert agent.bitmap.dirty_line_count(0) == 1
        assert agent.last_access_ns == 0.0   # off the critical path

    def test_eviction_sink_receives_dirty_mask(self):
        agent = self._agent(fmem_capacity=4 * u.PAGE_4K)   # one set
        evicted = []
        agent.on_page_eviction(lambda addr, mask: evicted.append((addr, mask)))
        agent.directory.get_modified(0, 1)
        agent.directory.put_modified(0, 1)
        for page in range(1, 5):      # overflow the set
            agent.directory.get_shared(page * u.PAGE_4K, 1)
        assert evicted == [(0, 0b1)]

    def test_snoop_on_eviction_captures_cached_dirty_lines(self):
        # A modified line still in the CPU cache when its page leaves
        # FMem must be snooped into the writeback (section 4.4).
        agent = self._agent(fmem_capacity=4 * u.PAGE_4K)
        dirty_lines = {0: True}
        agent.directory.register_agent(1, lambda a: dirty_lines.pop(a, False))
        evicted = []
        agent.on_page_eviction(lambda addr, mask: evicted.append((addr, mask)))
        agent.directory.get_modified(0, 1)   # CPU holds line 0 modified
        for page in range(1, 5):
            agent.directory.get_shared(page * u.PAGE_4K, 1)
        assert evicted and evicted[0][1] == 0b1

    def test_eager_upgrade_tracking(self):
        agent = self._agent(eager_upgrade_tracking=True)
        agent.directory.get_shared(0, 1)
        agent.directory.get_modified(0, 1)   # upgrade
        assert agent.bitmap.dirty_line_count(0) == 1

    def test_prefetch_next_page(self):
        agent = self._agent(prefetch_next_page=True)
        agent.directory.get_shared(0, 1)
        assert agent.counters["pages_prefetched"] == 1
        # The next page is now an FMem hit.
        agent.directory.get_shared(u.PAGE_4K, 1)
        assert agent.counters["fmem_hits"] == 1

    def test_fetch_block_configurable(self):
        agent = self._agent(fetch_block=1024)
        agent.directory.get_shared(0, 1)
        assert agent.account["fill_background"] > 0
