"""Differential tests: coalesced miss replay vs the per-event oracle.

The coalesced engine groups a replay segment's misses by page (stable
argsort over ``(page, seq)``) and grants each page run through one
directory transaction (``Directory.acquire_page_runs``) instead of one
transaction per event.  Its acceptance bar is *bit-identity* with the
per-event replay (``KonaConfig(coalesced_replay=False)``) and the
scalar oracle: identical fingerprints, ``elapsed_ns``, counters at
every layer, and merged causal ``FaultLog`` aggregates — across random
miss-heavy traces, coherence protocols, a chaos campaign, capture
on/off, and monolithic vs streamed vs sharded replay.
"""

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import CoherenceError, ConfigError
from repro.coherence.directory import Directory
from repro.coherence.states import LineState, Protocol
from repro.experiments.bench import (RUNTIME_QUICK_CASES,
                                     check_speedup, runtime_fingerprint)
from repro.kona.config import KonaConfig
from repro.kona.runtime import KonaRuntime
from repro.mem.address import AddressRange
from repro.workloads import WORKLOADS

N = 6_000
REGION = 32 * u.MB

#: (config coalesced_replay, run_trace engine) per logical engine; the
#: per-event oracle is the batched engine with page-run grants off.
ENGINES = {
    "scalar": (True, "scalar"),
    "per-event": (False, "batched"),
    "coalesced": (True, "batched"),
}


def build_runtime(coalesced=True, **overrides):
    defaults = dict(fmem_capacity=4 * u.MB, vfmem_capacity=256 * u.MB,
                    slab_bytes=16 * u.MB, coalesced_replay=coalesced)
    defaults.update(overrides)
    return KonaRuntime(KonaConfig(**defaults), app_ns_per_access=70.0)


def miss_heavy_trace(n, seed, region_bytes=REGION, hot_lines=512,
                     cold=0.65, write_frac=0.4):
    """Mostly cold lines: the segments classify miss-heavy, so replay
    goes through the coalesced page-run path rather than hit patching.
    """
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, hot_lines, size=n, dtype=np.int64)
    mask = rng.random(n) < cold
    lines[mask] = rng.integers(hot_lines, region_bytes // u.CACHE_LINE,
                               size=int(mask.sum()), dtype=np.int64)
    return lines * u.CACHE_LINE, rng.random(n) < write_frac


def run_one(engine, make_trace, capture=False, **overrides):
    coalesced, engine_arg = ENGINES[engine]
    rt = build_runtime(coalesced=coalesced, **overrides)
    cap = rt.attach_causal_capture() if capture else None
    region = rt.mmap(REGION)
    addrs, writes = make_trace()
    report = rt.run_trace(addrs + np.int64(region.start), writes,
                          engine=engine_arg)
    fp = runtime_fingerprint(rt, report)
    agg = cap.log.aggregate() if capture else None
    return fp, agg


def assert_all_identical(make_trace, capture=False, **overrides):
    got = {name: run_one(name, make_trace, capture=capture, **overrides)
           for name in ENGINES}
    assert got["coalesced"] == got["per-event"] == got["scalar"]


class TestMissHeavyRandom:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_traces_identical(self, seed):
        assert_all_identical(lambda: miss_heavy_trace(N, seed))

    @pytest.mark.parametrize("protocol", ["msi", "mesi", "moesi"])
    def test_protocols_identical(self, protocol):
        assert_all_identical(lambda: miss_heavy_trace(N, 11),
                             protocol=protocol)

    @pytest.mark.parametrize("protocol", ["msi", "mesi", "moesi"])
    def test_capture_on_identical(self, protocol):
        # Causal capture rows are deferred and block-recorded on the
        # coalesced path; aggregates must still match row for row.
        assert_all_identical(lambda: miss_heavy_trace(N, 13),
                             capture=True, protocol=protocol)

    @pytest.mark.parametrize("name", ["page-rank", "voltdb-tpcc"])
    def test_workload_models_identical(self, name):
        got = {}
        for eng, (coalesced, engine_arg) in ENGINES.items():
            rt = build_runtime(coalesced=coalesced, fmem_capacity=8 * u.MB)
            model = WORKLOADS[name]()
            trace = model.generate(windows=2, seed=7)
            region = rt.mmap(model.memory_bytes)
            m = min(N, len(trace))
            report = rt.run_trace(trace.addrs[:m] + np.uint64(region.start),
                                  trace.writes[:m], engine=engine_arg)
            got[eng] = runtime_fingerprint(rt, report)
        assert got["coalesced"] == got["per-event"] == got["scalar"]

    def test_tiny_fmem_eviction_pressure(self):
        # FMem far below the footprint: page drains snoop resident
        # lines between the coalesced segment commits.
        assert_all_identical(lambda: miss_heavy_trace(10_000, 17),
                             fmem_capacity=1 * u.MB)

    def test_explicit_engine_forces_coalescing_on(self):
        # engine="coalesced" overrides coalesced_replay=False and must
        # still be bit-identical to what the config flag produces.
        out = {}
        for coalesced, engine_arg in ((False, "coalesced"),
                                      (True, "batched")):
            rt = build_runtime(coalesced=coalesced)
            region = rt.mmap(REGION)
            addrs, writes = miss_heavy_trace(N, 19)
            report = rt.run_trace(addrs + np.int64(region.start), writes,
                                  engine=engine_arg)
            out[engine_arg] = runtime_fingerprint(rt, report)
        assert out["coalesced"] == out["batched"]


class TestChaosCampaign:
    """Fail a replica mid-run, recover, compare all three engines."""

    @staticmethod
    def _chaos_runtime(coalesced):
        cfg = KonaConfig(fmem_capacity=4 * u.MB,
                         vfmem_capacity=64 * u.MB,
                         slab_bytes=16 * u.MB,
                         replication_factor=2,
                         retry_seed=0,
                         coalesced_replay=coalesced)
        rt = KonaRuntime(cfg, num_memory_nodes=2, app_ns_per_access=70.0)
        rt.failures.coherence_timeout_ns = 10_000.0
        return rt

    @pytest.mark.parametrize("capture", [False, True])
    def test_node_failure_between_spans(self, capture):
        out = {}
        for eng, (coalesced, engine_arg) in ENGINES.items():
            rt = self._chaos_runtime(coalesced)
            cap = rt.attach_causal_capture() if capture else None
            region = rt.mmap(16 * u.MB)
            addrs, writes = miss_heavy_trace(9_000, 23,
                                             region_bytes=16 * u.MB)
            addrs = addrs + np.int64(region.start)
            spans = np.array_split(np.arange(addrs.size), 3)
            rt.run_trace(addrs[spans[0]], writes[spans[0]],
                         engine=engine_arg)
            rt.fabric.fail_node("mem0")
            rt.run_trace(addrs[spans[1]], writes[spans[1]],
                         engine=engine_arg)
            rt.fabric.recover_node("mem0")
            rt.recover()
            report = rt.run_trace(addrs[spans[2]], writes[spans[2]],
                                  engine=engine_arg)
            out[eng] = (runtime_fingerprint(rt, report),
                        cap.log.aggregate() if capture else None)
        assert out["coalesced"] == out["per-event"] == out["scalar"]


class TestStreamedAndSharded:
    def test_streamed_chunks_identical_to_monolithic(self):
        addrs0, writes = miss_heavy_trace(12_000, 29)
        mono = {}
        for eng, (coalesced, engine_arg) in ENGINES.items():
            rt = build_runtime(coalesced=coalesced)
            cap = rt.attach_causal_capture()
            region = rt.mmap(REGION)
            report = rt.run_trace(addrs0 + np.int64(region.start), writes,
                                  engine=engine_arg)
            mono[eng] = (runtime_fingerprint(rt, report),
                         cap.log.aggregate())
        assert mono["coalesced"] == mono["per-event"] == mono["scalar"]

        # Random cadence-aligned cuts, streamed through each engine.
        rng = np.random.default_rng(31)
        cuts = np.unique(rng.integers(1, addrs0.size // 256, 4)) * 256
        bounds = [0, *cuts.tolist(), addrs0.size]
        for eng, (coalesced, engine_arg) in ENGINES.items():
            rt = build_runtime(coalesced=coalesced)
            cap = rt.attach_causal_capture()
            region = rt.mmap(REGION)
            base = np.int64(region.start)
            chunks = ((addrs0[a:b] + base, writes[a:b])
                      for a, b in zip(bounds, bounds[1:]))
            report = rt.run_trace_stream(chunks, engine=engine_arg)
            streamed = (runtime_fingerprint(rt, report),
                        cap.log.aggregate())
            assert streamed == mono[eng], eng

    def test_sharded_coalesced_matches_sharded_scalar(self, tmp_path):
        from dataclasses import replace

        from repro.experiments.shard import make_shards, run_sharded
        from repro.workloads.trace import TRACE_DTYPE, Trace, save_columnar

        addrs, writes = miss_heavy_trace(12_000, 37)
        data = np.zeros(addrs.size, dtype=TRACE_DTYPE)
        data["addr"] = addrs.astype(np.uint64)
        data["size"] = u.CACHE_LINE
        data["write"] = writes
        trace_dir = str(tmp_path / "miss.trace")
        save_columnar(Trace(data=data, memory_bytes=REGION), trace_dir)
        out = {}
        for engine in ("scalar", "coalesced"):
            specs = [replace(spec, capture=True)
                     for spec in make_shards(trace_dir, 2, engine=engine,
                                             chunk_size=1 << 12,
                                             fmem_mb=4, vfmem_mb=64)]
            result = run_sharded(specs, processes=1)
            out[engine] = (result.totals.as_dict(), result.elapsed_ns,
                           result.fault_log().aggregate())
        assert out["coalesced"] == out["scalar"]


HOME = AddressRange(0, 1 * u.MB)


class TestDirectoryPageRun:
    """Unit contract of the bulk grant APIs against get_s/get_m."""

    @staticmethod
    def _twin_run(protocol, lines, writes, agent_id=1, seed_fn=None):
        """Apply the same run via page-run and per-event APIs."""
        bulk = Directory(HOME, protocol)
        oracle = Directory(HOME, protocol)
        inv_bulk, inv_oracle = [], []
        bulk.register_agent(9, lambda a: (inv_bulk.append(a), False)[1])
        oracle.register_agent(9, lambda a: (inv_oracle.append(a), False)[1])
        if seed_fn is not None:
            seed_fn(bulk)
            seed_fn(oracle)
        nw = sum(writes)
        grants, inval = bulk.acquire_page_run(
            0, len(lines) - nw, nw, bool(writes[0]), agent_id,
            lines, writes)
        expect = []
        for line, w in zip(lines, writes):
            if w:
                oracle.get_modified(line, agent_id)
                expect.append(LineState.MODIFIED)
            else:
                expect.append(oracle.get_shared(line, agent_id))
        return bulk, oracle, grants, expect, inval, inv_bulk, inv_oracle

    @pytest.mark.parametrize("protocol",
                             [Protocol.MSI, Protocol.MESI, Protocol.MOESI])
    def test_grants_match_per_event_sequence(self, protocol):
        lines = [0, 64, 128, 192, 256]
        writes = [False, True, False, False, True]
        bulk, oracle, grants, expect, _, _, _ = self._twin_run(
            protocol, lines, writes)
        assert grants == expect
        for line in lines:
            assert bulk.state_of(line) is oracle.state_of(line)
        assert bulk.counters.as_dict() == oracle.counters.as_dict()

    @pytest.mark.parametrize("protocol",
                             [Protocol.MSI, Protocol.MESI, Protocol.MOESI])
    def test_residue_invalidates_like_per_event(self, protocol):
        # Another agent owns a line: the generic path must snoop it
        # exactly as get_modified would.
        def seed(d):
            d.get_modified(64, 9)
        lines, writes = [0, 64, 128], [True, True, False]
        bulk, oracle, grants, expect, inval, inv_b, inv_o = self._twin_run(
            protocol, lines, writes, seed_fn=seed)
        assert grants == expect
        assert inv_b == inv_o == [64]
        assert inval == 1
        for line in lines:
            assert bulk.state_of(line) is oracle.state_of(line)
        assert bulk.counters.as_dict() == oracle.counters.as_dict()

    def test_page_runs_batch_equals_single_runs(self):
        d1 = Directory(AddressRange(0, 1 * u.MB), Protocol.MESI)
        d2 = Directory(AddressRange(0, 1 * u.MB), Protocol.MESI)
        # Two pages' runs, (page, seq)-sorted, mixed intent.
        lines = [0, 64, 128, u.PAGE_4K, u.PAGE_4K + 192]
        writes = [False, True, False, True, False]
        inval = d1.acquire_page_runs(lines, writes, agent_id=1)
        g0, i0 = d2.acquire_page_run(0, 2, 1, False, 1,
                                     lines[:3], writes[:3])
        g1, i1 = d2.acquire_page_run(u.PAGE_4K, 1, 1, True, 1,
                                     lines[3:], writes[3:])
        assert inval == i0 + i1 == 0
        for line in lines:
            assert d1.state_of(line) is d2.state_of(line)
        assert d1.counters.as_dict() == d2.counters.as_dict()

    def test_header_validation(self):
        d = Directory(HOME, Protocol.MESI)
        with pytest.raises(CoherenceError):   # counts disagree
            d.acquire_page_run(0, 2, 0, False, 1, [0, 64], [False, True])
        with pytest.raises(CoherenceError):   # first_is_write disagrees
            d.acquire_page_run(0, 1, 1, True, 1, [0, 64], [False, True])
        with pytest.raises(CoherenceError):   # line outside the page
            d.acquire_page_run(0, 2, 0, False, 1, [0, u.PAGE_4K],
                               [False, False])
        with pytest.raises(CoherenceError):   # misaligned line
            d.acquire_page_run(0, 2, 0, False, 1, [0, 65], [False, False])
        with pytest.raises(CoherenceError):   # ragged lines/writes
            d.acquire_page_run(0, 1, 0, False, 1, [0, 64], [False])
        assert d.acquire_page_run(0, 0, 0, False, 1, [], []) == ([], 0)


class TestConfigKnobs:
    def test_defaults(self):
        cfg = KonaConfig(fmem_capacity=4 * u.MB, vfmem_capacity=64 * u.MB,
                         slab_bytes=16 * u.MB)
        assert cfg.miss_replay_density == 0.5
        assert cfg.batch_escape_density == 0.5
        assert cfg.batch_reenter_hits == 0.875
        assert cfg.coalesced_replay is True

    @pytest.mark.parametrize("field,value", [
        ("miss_replay_density", 0.0),
        ("miss_replay_density", 1.5),
        ("batch_escape_density", -0.1),
        ("batch_escape_density", 2.0),
        ("batch_reenter_hits", -0.5),
        ("batch_reenter_hits", 1.01),
    ])
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ConfigError):
            KonaConfig(fmem_capacity=4 * u.MB, vfmem_capacity=64 * u.MB,
                       slab_bytes=16 * u.MB, **{field: value})

    def test_hysteresis_knobs_are_honored(self):
        # Degenerate thresholds flip the adaptive engine's mode
        # choices, but bit-identity with the oracle must hold at any
        # legal setting — the knobs steer speed, never results.
        for density in (0.01, 1.0):
            assert_all_identical(lambda: miss_heavy_trace(4_000, 41),
                                 miss_replay_density=density,
                                 batch_escape_density=density,
                                 batch_reenter_hits=0.0)


class TestPerfGateFloors:
    def test_quick_suite_has_miss_heavy_canonical_case(self):
        labels = {case.case_label: case for case in RUNTIME_QUICK_CASES}
        case = labels["page-rank-miss"]
        assert case.workload == "page-rank"
        assert case.num_accesses == 150_000
        assert case.seed == 7
        assert case.fmem_mb == 8

    def test_miss_heavy_cases_gate_above_parity(self):
        payload = {
            "canonical_speedup": 9.0,
            "cases": [
                {"workload": "hot-mix", "speedup": 9.0,
                 "counters_match": True},
                {"workload": "page-rank-miss", "speedup": 1.1,
                 "counters_match": True},
            ],
        }
        failures = check_speedup(payload, 1.0)
        assert len(failures) == 1
        assert "page-rank-miss" in failures[0] and "1.3x" in failures[0]
        # An explicit floor map overrides the default miss-heavy bars.
        assert check_speedup(payload, 1.0, case_floors={}) == []

    def test_generic_floor_still_applies(self):
        payload = {
            "canonical_speedup": 9.0,
            "cases": [{"workload": "hot-mix", "speedup": 0.9,
                       "counters_match": True}],
        }
        failures = check_speedup(payload, 1.0)
        assert len(failures) == 1 and "hot-mix" in failures[0]
