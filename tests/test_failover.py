"""Tests for the memnode-failover durability experiment (section 4.5).

The acceptance claim: a seeded campaign that kills a primary memory
node mid-run (and silently corrupts a survivor) completes with a final
remote-memory image **bit-identical** to a no-fault oracle run of the
same stream — replicated remote memory loses nothing.
"""

import numpy as np
import pytest

import repro.common.units as u
from repro.chaos import no_acknowledged_write_lost, no_scatter_loss, \
    writeback_conservation
from repro.experiments.failover import (
    FAILOVER_SLOS,
    build_failover_runtime,
    run_failover,
)

OPS = 6_000


@pytest.fixture(scope="module")
def failover_result():
    """One full campaign, shared by the read-only assertions."""
    return run_failover(seed=0, ops=OPS)


class TestDurabilityProof:
    def test_image_matches_oracle_bit_for_bit(self, failover_result):
        assert failover_result.image_matches
        assert failover_result.image_lines == failover_result.oracle_lines
        assert failover_result.image_lines > 0

    def test_all_invariants_hold(self, failover_result):
        failed = [c.name for c in failover_result.result.invariants
                  if not c.passed]
        assert failed == []
        names = {c.name for c in failover_result.result.invariants}
        assert {"durability_image_match", "no_faulted_accesses",
                "epochs_monotonic", "replication_restored",
                "no_unrepaired_corruption",
                "no_acknowledged_write_lost"} <= names

    def test_failover_actually_happened(self, failover_result):
        assert failover_result.failovers >= 1
        assert failover_result.promotions >= 1
        labels = [label for _, label in failover_result.result.timeline]
        assert any(label.startswith("kill:") for label in labels)

    def test_outage_invisible_to_the_application(self, failover_result):
        # A live backup exists for every slot, so no access ever faults.
        assert failover_result.result.faulted_accesses == 0

    def test_corruption_was_detected_and_repaired(self, failover_result):
        assert failover_result.scrub_repairs > 0
        labels = [label for _, label in failover_result.result.timeline]
        assert any(label.startswith("corrupt:") for label in labels)

    def test_mttr_includes_the_lease_fence(self, failover_result):
        # Promotion waits out the dead primary's lease; MTTR can't be
        # cheaper than the configured TTL.
        assert failover_result.mttr_ns >= 30_000.0
        assert failover_result.mttr_ns < 2_000_000.0

    def test_slo_recovery_rules_hold(self, failover_result):
        verdicts = failover_result.engine.verdicts()
        assert len(verdicts) == len(FAILOVER_SLOS)
        assert all(met for _, _, met in verdicts)
        assert failover_result.passed


class TestDeterminism:
    def test_same_seed_identical_fingerprints(self):
        a = run_failover(seed=5, ops=3_000)
        b = run_failover(seed=5, ops=3_000)
        assert a.fingerprint() == b.fingerprint()

    def test_different_seeds_differ(self):
        a = run_failover(seed=5, ops=3_000)
        b = run_failover(seed=6, ops=3_000)
        assert a.fingerprint() != b.fingerprint()


class TestParkFailoverDrainCycles:
    """Property-style: the pending-writeback park never duplicates or
    drops a record across repeated park/failover/drain cycles."""

    def _drive(self, rt, region, rng, ops):
        pages = region.size // u.PAGE_4K
        for _ in range(ops):
            page = int(rng.integers(0, pages))
            line = int(rng.integers(0, u.PAGE_4K // u.CACHE_LINE))
            addr = region.start + page * u.PAGE_4K + line * u.CACHE_LINE
            rt.access(addr, bool(rng.random() < 0.6))
            rt.fabric.clock.advance(rt.app_ns_per_access)
        rt.maybe_evict()

    def test_n_cycles_conserve_every_writeback(self):
        rt = build_failover_runtime(seed=9)
        region = rt.mmap(8 * u.MB)
        rng = np.random.default_rng(9)
        slot = rt.replication.slot_of(region.start)
        for cycle in range(4):
            self._drive(rt, region, rng, 1_200)
            victim = rt.replication.sets[slot].primary.node
            rt.controller.node(victim).fail()
            rt.on_memnode_failure(victim)
            self._drive(rt, region, rng, 600)      # write during outage
            rt.recover()
            rt.controller.node(victim).recover()
            for check in (writeback_conservation(rt), no_scatter_loss(rt),
                          no_acknowledged_write_lost(rt)):
                assert check.passed, f"cycle {cycle}: {check.detail}"
        rt.flush()
        rt.recover()
        assert rt.eviction.parked_records == 0
        assert rt.eviction.pending_records == 0
        assert rt.replication.epochs_monotonic()
        assert rt.replication.sets[slot].epoch == 4
        final = writeback_conservation(rt)
        assert final.passed, final.detail
        rt.close()
