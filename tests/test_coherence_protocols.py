"""Tests for the MSI / MESI / MOESI protocol variants.

The paper (section 2.3) notes Kona works with any invalidation-based
protocol; what differs is *when* the home agent sees dirty data.  These
tests pin those differences down.
"""

import pytest

import repro.common.units as u
from repro.coherence import (
    CoherentCache,
    Directory,
    EventKind,
    LineState,
    Protocol,
)
from repro.mem.address import AddressRange

HOME = AddressRange(0, u.MB)


def build(protocol, capacity=8 * u.KB):
    events = []
    directory = Directory(HOME, protocol=protocol)
    directory.subscribe(events.append)
    cache = CoherentCache(0, lambda a: directory, capacity=capacity,
                          ways=2, protocol=protocol)
    cache.attach(directory)
    return directory, cache, events


class TestMSI:
    def test_read_fills_shared_not_exclusive(self):
        directory, cache, _ = build(Protocol.MSI)
        cache.access(0, False)
        assert cache.state_of(0) is LineState.SHARED
        assert directory.state_of(0) is LineState.SHARED

    def test_no_silent_upgrade(self):
        # MSI: the first write to a read line is an explicit GetM —
        # the home sees intent-to-write immediately.
        directory, cache, events = build(Protocol.MSI)
        cache.access(0, False)
        cache.access(0, True)
        assert any(e.kind is EventKind.UPGRADE for e in events)
        assert directory.state_of(0) is LineState.MODIFIED

    def test_mesi_upgrade_is_silent_by_contrast(self):
        directory, cache, events = build(Protocol.MESI)
        cache.access(0, False)
        cache.access(0, True)
        assert not any(e.kind is EventKind.UPGRADE for e in events)
        assert directory.state_of(0) is LineState.EXCLUSIVE  # home lags


class TestMOESI:
    def _two_agents(self):
        events = []
        directory = Directory(HOME, protocol=Protocol.MOESI)
        directory.subscribe(events.append)
        caches = []
        for agent_id in (0, 1):
            cache = CoherentCache(agent_id, lambda a: directory,
                                  capacity=8 * u.KB, ways=2,
                                  protocol=Protocol.MOESI)
            cache.attach(directory)
            caches.append(cache)
        return directory, caches, events

    def test_dirty_sharing_defers_home_writeback(self):
        directory, (a, b), events = self._two_agents()
        a.access(0, True)                    # A holds M
        b.access(0, False)                   # B reads: A -> OWNED
        assert a.state_of(0) is LineState.OWNED
        assert directory.state_of(0) is LineState.OWNED
        # Crucially: no DIRTY_WRITEBACK has reached the home yet.
        assert not any(e.kind is EventKind.DIRTY_WRITEBACK for e in events)

    def test_owned_eviction_finally_writes_back(self):
        directory, (a, b), events = self._two_agents()
        a.access(0, True)
        b.access(0, False)
        a.flush_tracked()                    # PutO
        assert any(e.kind is EventKind.DIRTY_WRITEBACK for e in events)
        # B's clean copy survives.
        assert b.state_of(0) is LineState.SHARED
        assert directory.state_of(0) is LineState.SHARED

    def test_mesi_dirty_sharing_writes_back_immediately(self):
        events = []
        directory = Directory(HOME, protocol=Protocol.MESI)
        directory.subscribe(events.append)
        a = CoherentCache(0, lambda x: directory, capacity=8 * u.KB, ways=2)
        b = CoherentCache(1, lambda x: directory, capacity=8 * u.KB, ways=2)
        a.attach(directory)
        b.attach(directory)
        a.access(0, True)
        b.access(0, False)
        # MESI: the home is updated when the read-share happens.
        assert any(e.kind is EventKind.DIRTY_WRITEBACK for e in events)
        assert a.state_of(0) is LineState.SHARED


class TestDirtyConservationAcrossProtocols:
    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_every_written_line_eventually_tracked(self, protocol):
        directory, cache, events = build(protocol, capacity=2 * u.KB)
        written = set()
        for i in range(200):
            addr = (i * 7 % 97) * u.CACHE_LINE
            is_write = i % 3 == 0
            cache.access(addr, is_write)
            if is_write:
                written.add(addr)
        cache.flush_tracked()
        tracked = {e.line_addr for e in events
                   if e.kind in (EventKind.DIRTY_WRITEBACK,
                                 EventKind.SNOOPED)}
        assert tracked == written

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_msi_sees_more_directory_traffic(self, protocol):
        directory, cache, _ = build(protocol)
        for i in range(64):
            cache.access(i * u.CACHE_LINE, False)
            cache.access(i * u.CACHE_LINE, True)
        if protocol is Protocol.MSI:
            assert directory.counters["get_m"] == 64   # explicit upgrades
        else:
            assert directory.counters["get_m"] == 0    # silent E->M
