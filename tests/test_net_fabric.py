"""Tests for the RDMA fabric model."""

import pytest

import repro.common.units as u
from repro.common.errors import ConfigError, NetworkError
from repro.net.fabric import Fabric, FaultSchedule


@pytest.fixture
def fabric():
    f = Fabric()
    f.add_node("compute")
    f.add_node("mem0")
    return f


class TestTopology:
    def test_add_and_has(self, fabric):
        assert fabric.has_node("compute")
        assert not fabric.has_node("ghost")

    def test_duplicate_node_rejected(self, fabric):
        with pytest.raises(ConfigError):
            fabric.add_node("compute")

    def test_unknown_node_rejected(self, fabric):
        with pytest.raises(ConfigError):
            fabric.transfer("compute", "ghost", 64)


class TestTransfers:
    def test_transfer_advances_clock(self, fabric):
        before = fabric.clock.now
        receipt = fabric.transfer("compute", "mem0", 4096)
        assert fabric.clock.now == before + receipt.latency_ns
        assert receipt.nbytes == 4096

    def test_cost_matches_latency_model(self, fabric):
        cost = fabric.transfer_cost_ns("compute", "mem0", 4096,
                                       linked=True, signaled=False)
        expected = fabric.latency.rdma_transfer_ns(4096, linked=True,
                                                   signaled=False)
        assert cost == expected

    def test_bytes_accounted(self, fabric):
        fabric.transfer("compute", "mem0", 100)
        fabric.transfer("compute", "mem0", 200)
        assert fabric.bytes_moved == 300
        assert fabric.counters["transfers"] == 2

    def test_negative_bytes_rejected(self, fabric):
        with pytest.raises(ConfigError):
            fabric.transfer("compute", "mem0", -1)


class TestFailureInjection:
    def test_failed_node_unreachable(self, fabric):
        fabric.fail_node("mem0")
        assert fabric.is_down("mem0")
        with pytest.raises(NetworkError):
            fabric.transfer("compute", "mem0", 64)
        assert fabric.counters["failed_transfers"] == 1

    def test_recover(self, fabric):
        fabric.fail_node("mem0")
        fabric.recover_node("mem0")
        fabric.transfer("compute", "mem0", 64)   # should not raise

    def test_link_delay_adds_latency(self, fabric):
        base = fabric.transfer_cost_ns("compute", "mem0", 64)
        fabric.delay_link("compute", "mem0", 50_000)
        assert fabric.transfer_cost_ns("compute", "mem0", 64) == base + 50_000
        # The reverse direction is unaffected.
        assert fabric.transfer_cost_ns("mem0", "compute", 64) == base

    def test_negative_delay_rejected(self, fabric):
        with pytest.raises(ConfigError):
            fabric.delay_link("compute", "mem0", -5)

    def test_clear_delay_restores_baseline(self, fabric):
        base = fabric.transfer_cost_ns("compute", "mem0", 64)
        fabric.delay_link("compute", "mem0", 50_000)
        fabric.clear_delay("compute", "mem0")
        assert fabric.transfer_cost_ns("compute", "mem0", 64) == base

    def test_zero_delay_retracts_injection(self, fabric):
        base = fabric.transfer_cost_ns("compute", "mem0", 64)
        fabric.delay_link("compute", "mem0", 50_000)
        fabric.delay_link("compute", "mem0", 0)
        assert fabric.transfer_cost_ns("compute", "mem0", 64) == base


class TestFlakyLinks:
    def test_drops_are_seeded_and_charged(self, fabric):
        fabric.set_flaky("compute", "mem0", 0.5, seed=3)
        drops = 0
        before = fabric.clock.now
        for _ in range(64):
            try:
                fabric.transfer("compute", "mem0", 64)
            except NetworkError:
                drops += 1
        # The wire was occupied for every attempt, dropped or not.
        assert fabric.clock.now > before
        assert 0 < drops < 64
        assert fabric.counters["dropped_transfers"] == drops

    def test_same_seed_same_drop_pattern(self):
        def pattern(seed):
            f = Fabric()
            f.add_node("a")
            f.add_node("b")
            f.set_flaky("a", "b", 0.5, seed=seed)
            return [f.drops_transfer("a", "b") for _ in range(32)]

        assert pattern(9) == pattern(9)
        assert pattern(9) != pattern(10)

    def test_clear_flaky(self, fabric):
        fabric.set_flaky("compute", "mem0", 1.0, seed=0)
        fabric.clear_flaky("compute", "mem0")
        fabric.transfer("compute", "mem0", 64)   # should not raise

    def test_bad_drop_rate_rejected(self, fabric):
        with pytest.raises(ConfigError):
            fabric.set_flaky("compute", "mem0", 1.5)


class TestPartition:
    def test_partition_blocks_both_directions(self, fabric):
        fabric.partition(["compute"], ["mem0"])
        assert fabric.is_partitioned("compute", "mem0")
        assert not fabric.reachable("compute", "mem0")
        with pytest.raises(NetworkError):
            fabric.transfer("compute", "mem0", 64)
        with pytest.raises(NetworkError):
            fabric.transfer("mem0", "compute", 64)
        assert fabric.counters["partitioned_transfers"] == 2

    def test_heal_partition(self, fabric):
        fabric.partition(["compute"], ["mem0"])
        fabric.heal_partition()
        assert fabric.reachable("compute", "mem0")
        fabric.transfer("compute", "mem0", 64)   # should not raise

    def test_overlapping_groups_rejected(self, fabric):
        with pytest.raises(ConfigError):
            fabric.partition(["compute", "mem0"], ["mem0"])


class TestNodeJitter:
    def test_jitter_slows_transfers(self, fabric):
        clean = fabric.transfer("compute", "mem0", 4096).latency_ns
        fabric.set_node_jitter("mem0", 10_000.0, seed=4)
        slow = fabric.transfer("compute", "mem0", 4096).latency_ns
        assert slow > clean

    def test_clear_jitter(self, fabric):
        clean = fabric.transfer("compute", "mem0", 4096).latency_ns
        fabric.set_node_jitter("mem0", 10_000.0, seed=4)
        fabric.clear_node_jitter("mem0")
        assert fabric.transfer("compute", "mem0", 4096).latency_ns == clean


class TestFaultSchedule:
    def test_fires_in_timestamp_order(self):
        schedule = FaultSchedule()
        fired = []
        schedule.at(300, "late", lambda: fired.append("late"))
        schedule.at(100, "early", lambda: fired.append("early"))
        schedule.at(200, "mid", lambda: fired.append("mid"))
        labels = schedule.fire_due(250)
        assert labels == ["early", "mid"]
        assert fired == ["early", "mid"]
        assert schedule.pending == 1
        assert schedule.next_at() == 300

    def test_each_event_fires_once(self):
        schedule = FaultSchedule()
        hits = []
        schedule.at(50, "once", lambda: hits.append(1))
        schedule.fire_due(100)
        schedule.fire_due(200)
        assert hits == [1]
        assert schedule.fired == [(50, "once")]

    def test_ties_fire_in_registration_order(self):
        schedule = FaultSchedule()
        fired = []
        schedule.at(100, "first", lambda: fired.append("first"))
        schedule.at(100, "second", lambda: fired.append("second"))
        schedule.fire_due(100)
        assert fired == ["first", "second"]

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule().at(-1, "bad", lambda: None)
