"""Tests for the RDMA fabric model."""

import pytest

import repro.common.units as u
from repro.common.errors import ConfigError, NetworkError
from repro.net.fabric import Fabric


@pytest.fixture
def fabric():
    f = Fabric()
    f.add_node("compute")
    f.add_node("mem0")
    return f


class TestTopology:
    def test_add_and_has(self, fabric):
        assert fabric.has_node("compute")
        assert not fabric.has_node("ghost")

    def test_duplicate_node_rejected(self, fabric):
        with pytest.raises(ConfigError):
            fabric.add_node("compute")

    def test_unknown_node_rejected(self, fabric):
        with pytest.raises(ConfigError):
            fabric.transfer("compute", "ghost", 64)


class TestTransfers:
    def test_transfer_advances_clock(self, fabric):
        before = fabric.clock.now
        receipt = fabric.transfer("compute", "mem0", 4096)
        assert fabric.clock.now == before + receipt.latency_ns
        assert receipt.nbytes == 4096

    def test_cost_matches_latency_model(self, fabric):
        cost = fabric.transfer_cost_ns("compute", "mem0", 4096,
                                       linked=True, signaled=False)
        expected = fabric.latency.rdma_transfer_ns(4096, linked=True,
                                                   signaled=False)
        assert cost == expected

    def test_bytes_accounted(self, fabric):
        fabric.transfer("compute", "mem0", 100)
        fabric.transfer("compute", "mem0", 200)
        assert fabric.bytes_moved == 300
        assert fabric.counters["transfers"] == 2

    def test_negative_bytes_rejected(self, fabric):
        with pytest.raises(ConfigError):
            fabric.transfer("compute", "mem0", -1)


class TestFailureInjection:
    def test_failed_node_unreachable(self, fabric):
        fabric.fail_node("mem0")
        assert fabric.is_down("mem0")
        with pytest.raises(NetworkError):
            fabric.transfer("compute", "mem0", 64)
        assert fabric.counters["failed_transfers"] == 1

    def test_recover(self, fabric):
        fabric.fail_node("mem0")
        fabric.recover_node("mem0")
        fabric.transfer("compute", "mem0", 64)   # should not raise

    def test_link_delay_adds_latency(self, fabric):
        base = fabric.transfer_cost_ns("compute", "mem0", 64)
        fabric.delay_link("compute", "mem0", 50_000)
        assert fabric.transfer_cost_ns("compute", "mem0", 64) == base + 50_000
        # The reverse direction is unaffected.
        assert fabric.transfer_cost_ns("mem0", "compute", 64) == base

    def test_negative_delay_rejected(self, fabric):
        with pytest.raises(ConfigError):
            fabric.delay_link("compute", "mem0", -5)
