"""Smoke tests for the experiment drivers at reduced scale.

The full assertions live in benchmarks/; these just pin the drivers'
shapes and basic sanity so refactors can't silently break the harness.
"""

import pytest

import repro.common.units as u
from repro.experiments import (
    run_fig7,
    run_fig8_amat,
    run_fig8d_blocksize,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig11c_breakdown,
    run_table2,
)
from repro.experiments.fig8 import SYSTEMS


class TestFig7Driver:
    def test_small_run_has_all_systems(self):
        result = run_fig7(region_bytes=4 * u.MB, threads=(1, 2))
        assert set(result.times_ns) == {
            "kona", "kona-vm", "kona-noevict", "kona-vm-noevict",
            "kona-vm-nowp"}
        assert result.speedup(1) > 1.0

    def test_contention_shrinks_advantage(self):
        result = run_fig7(region_bytes=4 * u.MB, threads=(1, 4))
        assert result.speedup(4) < result.speedup(1)


class TestFig8Driver:
    def test_systems_and_fractions(self):
        result = run_fig8_amat(workloads=("redis-rand",),
                               fractions=(0.0, 0.5),
                               data_bytes=8 * u.MB, num_ops=5000)
        series = result.amat_ns["redis-rand"]
        assert set(series) == set(SYSTEMS)
        assert set(series["kona"]) == {0.0, 0.5}

    def test_blocksize_driver(self):
        sweep = run_fig8d_blocksize(blocks=(1024, 4096),
                                    fractions=(0.5,),
                                    data_bytes=8 * u.MB, num_ops=5000)
        assert set(sweep[0.5]) == {1024, 4096}


class TestTraceDrivers:
    def test_fig9_series_shapes(self):
        result = run_fig9(windows_rand=14, windows_seq=12,
                          memory_bytes=16 * u.MB)
        assert set(result.series) == {"redis-rand", "redis-seq"}
        assert len(result.steady_ratios("redis-rand")) > 0

    def test_fig10_orders_workloads(self):
        result = run_fig10(workloads=("redis-rand", "redis-seq"))
        assert result.max_workload() == "redis-rand"

    def test_table2_rows_complete(self):
        result = run_table2(workloads=("redis-seq",), windows=4)
        rows = list(result.rows())
        assert len(rows) == 1
        assert rows[0][0] == "redis-seq"
        assert result.relative_error("redis-seq", "4k") < 1.0


class TestFig11Driver:
    def test_patterns(self):
        for pattern in ("contiguous", "alternate"):
            result = run_fig11(pattern=pattern, line_counts=(1, 4),
                               pages=512)
            kona = dict(result.series("kona-cl-log"))
            assert set(kona) == {1, 4}
            assert kona[1] > 1.0

    def test_breakdown_fractions_sum(self):
        breakdown = run_fig11c_breakdown(line_counts=(8,), pages=512)
        shares = {k: v for k, v in breakdown[8].items() if k != "total_ms"}
        assert sum(shares.values()) == pytest.approx(1.0)


class TestHeadlineDriver:
    def test_headline_claims_hold(self):
        from repro.experiments import run_headline
        result = run_headline(num_ops=15_000)
        assert result.all_claims_hold()
        rows = list(result.rows())
        assert len(rows) == 5


class TestKCacheSimTraceBridge:
    def test_run_trace_over_workload(self):
        import numpy as np
        from repro.tools.kcachesim import KCacheSim
        from repro.workloads import WORKLOADS
        from repro.workloads.amat import redis_rand_spec
        wl = WORKLOADS["redis-rand"]()
        trace = wl.generate(windows=2, seed=0)
        sim = KCacheSim(redis_rand_spec(data_bytes=wl.memory_bytes))
        result = sim.run_trace(trace.addrs[:20000], trace.writes[:20000],
                               cache_fraction=0.5)
        amat = result.amat_ns("kona")
        assert amat > 0
        assert result.amat_ns("infiniswap") > amat
