"""Unit tests for the vectorized cache kernel."""

import numpy as np
import pytest

import repro.common.units as u
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.vectorized import SUPPORTED_POLICIES, VectorizedCache
from repro.common.errors import ConfigError


def make_cache(capacity=4 * u.KB, block=64, ways=2, policy="lru"):
    return VectorizedCache("test", capacity, block, ways, policy)


class TestConstruction:
    def test_geometry(self):
        c = make_cache()
        assert c.num_sets == 4 * u.KB // (64 * 2)
        assert c.occupancy == 0

    @pytest.mark.parametrize("cap,block,ways", [
        (0, 64, 2), (4096, 0, 2), (4096, 64, 0),
    ])
    def test_rejects_nonpositive(self, cap, block, ways):
        with pytest.raises(ConfigError):
            VectorizedCache("bad", cap, block, ways)

    def test_rejects_non_pow2_block(self):
        with pytest.raises(ConfigError):
            make_cache(block=96)

    def test_rejects_indivisible_capacity(self):
        with pytest.raises(ConfigError):
            VectorizedCache("bad", 1000, 64, 2)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ConfigError):
            VectorizedCache("bad", 3 * 64 * 2, 64, 2)

    def test_rejects_random_policy(self):
        with pytest.raises(ConfigError):
            make_cache(policy="random")
        assert "random" not in SUPPORTED_POLICIES

    def test_accepts_supported_policies(self):
        for policy in SUPPORTED_POLICIES:
            assert make_cache(policy=policy).policy_name == policy


class TestScalarAccessPath:
    def test_miss_then_hit(self):
        c = make_cache()
        hit, ev = c.access(0, False)
        assert not hit and ev is None
        hit, ev = c.access(0, False)
        assert hit and ev is None
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_eviction_reports_victim(self):
        c = make_cache(capacity=2 * 64, block=64, ways=2)  # one set
        c.access(0, True)
        c.access(64, False)
        hit, ev = c.access(128, False)
        assert not hit
        assert ev is not None and ev.dirty and ev.block_addr == 0

    def test_occupancy_and_residency(self):
        c = make_cache()
        c.access(0, False)
        c.access(64, True)
        assert c.occupancy == 2
        assert c.probe(0) and c.probe(64) and not c.probe(128)
        assert c.resident_blocks() == [0, 64]

    def test_dirty_tracking_and_clean(self):
        c = make_cache()
        c.access(0, True)
        assert c.is_dirty(0)
        assert c.clean(0)
        assert not c.is_dirty(0)
        assert not c.clean(0)

    def test_invalidate(self):
        c = make_cache()
        c.access(0, True)
        ev = c.invalidate(0)
        assert ev is not None and ev.dirty and ev.block_addr == 0
        assert not c.probe(0)
        assert c.occupancy == 0
        assert c.invalidate(0) is None


class TestBulkPath:
    def test_miss_mask_shape_and_dtype(self):
        c = make_cache()
        addrs = np.array([0, 64, 0, 64, 128], dtype=np.uint64)
        writes = np.zeros(5, dtype=bool)
        miss = c.simulate_batch(addrs, writes)
        assert miss.dtype == bool and miss.shape == (5,)
        assert list(miss) == [True, True, False, False, True]

    def test_empty_stream(self):
        c = make_cache()
        miss = c.simulate_batch(np.empty(0, dtype=np.uint64),
                                np.empty(0, dtype=bool))
        assert miss.size == 0
        assert c.stats.misses == 0

    def test_shape_mismatch_rejected(self):
        c = make_cache()
        with pytest.raises(ConfigError):
            c.simulate_batch(np.zeros(3, dtype=np.uint64),
                             np.zeros(2, dtype=bool))

    def test_run_collapsing_counts_hits(self):
        c = make_cache()
        addrs = np.zeros(100, dtype=np.uint64)  # one long run
        miss = c.simulate_batch(addrs, np.zeros(100, dtype=bool))
        assert int(miss.sum()) == 1
        assert c.stats.hits == 99 and c.stats.misses == 1

    def test_write_anywhere_in_run_dirties_block(self):
        c = make_cache()
        addrs = np.zeros(4, dtype=np.uint64)
        writes = np.array([False, False, True, False])
        c.simulate_batch(addrs, writes)
        assert c.is_dirty(0)

    def test_interleaves_with_scalar_access(self):
        c = make_cache()
        oracle = SetAssociativeCache("o", 4 * u.KB, 64, 2)
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 16 * u.KB, 200, dtype=np.uint64)
        writes = rng.random(200) < 0.5
        c.simulate_batch(addrs[:100], writes[:100])
        for a, w in zip(addrs[:100].tolist(), writes[:100].tolist()):
            oracle.access(a, w)
        for a, w in zip(addrs[100:150].tolist(), writes[100:150].tolist()):
            assert c.access(a, w)[0] == oracle.access(a, w)[0]
        c.simulate_batch(addrs[150:], writes[150:])
        for a, w in zip(addrs[150:].tolist(), writes[150:].tolist()):
            oracle.access(a, w)
        assert c.stats == oracle.stats


class TestReplacementSemantics:
    def test_lru_prefers_least_recent(self):
        c = make_cache(capacity=2 * 64, block=64, ways=2)  # one set
        c.simulate_batch(np.array([0, 64, 0], dtype=np.uint64),
                         np.zeros(3, dtype=bool))
        # 64 is LRU; a new block must evict it and keep 0 resident.
        c.simulate_batch(np.array([128], dtype=np.uint64),
                         np.zeros(1, dtype=bool))
        assert c.probe(0) and not c.probe(64) and c.probe(128)

    def test_fifo_ignores_hits(self):
        c = make_cache(capacity=2 * 64, block=64, ways=2, policy="fifo")
        c.simulate_batch(np.array([0, 64, 0], dtype=np.uint64),
                         np.zeros(3, dtype=bool))
        # 0 was inserted first; the hit must not refresh it under FIFO.
        c.simulate_batch(np.array([128], dtype=np.uint64),
                         np.zeros(1, dtype=bool))
        assert not c.probe(0) and c.probe(64) and c.probe(128)
