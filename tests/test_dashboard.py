"""Cluster dashboard rendering: valid from every fleet source.

The dashboard must render a faithful, self-contained report from any
fleet artifact — a failover chaos campaign and a multi-process sharded
replay are the two canonical producers — with no external assets and
no information encoded in color alone.
"""

import json

import pytest

from repro.experiments.failover import run_failover
from repro.obs import validate_chrome_trace
from repro.obs.dashboard import (
    dashboard_html,
    dashboard_text,
    write_dashboard,
)
from repro.obs.fleet import FleetRecorder


@pytest.fixture(scope="module")
def failover_fleet():
    result = run_failover(seed=0, ops=6_000, capture=True, fleet=True,
                          tenant="tenant-a")
    assert result.fleet is not None
    return result.fleet


@pytest.fixture(scope="module")
def sharded_fleet(tmp_path_factory):
    from repro.experiments.shard import make_shards, run_sharded
    from repro.workloads.trace import generate_hot_mix_stream
    import repro.common.units as u
    path = str(tmp_path_factory.mktemp("dash") / "hot.trace")
    generate_hot_mix_stream(path, 30_000, hot_lines=4096,
                            region_bytes=16 * u.MB, seed=11,
                            chunk_size=1 << 13)
    result = run_sharded(
        make_shards(path, 2, chunk_size=1 << 13, fmem_mb=4, vfmem_mb=32,
                    capture=True, fleet=True, tenant="tenant-b"),
        processes=2)
    return result.fleet()


class TestFailoverDashboard:
    def test_text_summary_has_all_sections(self, failover_fleet):
        text = dashboard_text(failover_fleet)
        assert "runtime:failover" in text
        assert "memnode:mem0" in text
        assert "fabric" in text
        assert "tenant-a" in text
        assert "park-drained" in text          # SLO verdicts
        assert "DEGRADED" in text              # health timeline

    def test_html_is_self_contained(self, failover_fleet):
        html = dashboard_html(failover_fleet)
        assert html.startswith("<!doctype html>")
        # No external assets: every style, script and graphic inline.
        assert 'src="http' not in html
        assert 'href="http' not in html
        assert "<link" not in html
        assert "@import" not in html

    def test_html_covers_components_slos_and_health(self, failover_fleet):
        html = dashboard_html(failover_fleet)
        for component in failover_fleet.components():
            assert component in html
        assert "park-drained" in html
        # Health states are rendered as text labels (chips carry the
        # state name, never color alone).
        assert "DEGRADED" in html
        assert "HEALTHY" in html
        assert "prefers-color-scheme: dark" in html

    def test_html_has_inline_svg_sparklines(self, failover_fleet):
        html = dashboard_html(failover_fleet)
        assert "<svg" in html and "polyline" in html

    def test_write_dashboard_round_trip(self, failover_fleet, tmp_path):
        path = write_dashboard(failover_fleet,
                               str(tmp_path / "dash.html"))
        content = open(path).read()
        assert content == dashboard_html(failover_fleet)

    def test_fleet_chrome_trace_valid_with_flows(self, failover_fleet):
        payload = failover_fleet.chrome_trace()
        assert validate_chrome_trace(payload) == []
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"s", "f"} <= phases, "no correlation flow arrows"

    def test_artifact_renders_after_round_trip(self, failover_fleet,
                                               tmp_path):
        path = failover_fleet.save(str(tmp_path / "fleet.json"))
        loaded = FleetRecorder.load(path)
        assert dashboard_html(loaded) == dashboard_html(failover_fleet)
        assert dashboard_text(loaded) == dashboard_text(failover_fleet)


class TestShardedDashboard:
    def test_text_names_every_shard_component(self, sharded_fleet):
        text = dashboard_text(sharded_fleet)
        assert "runtime:shard0" in text
        assert "runtime:shard1" in text
        assert "memnode:shard0.mem0" in text
        assert "tenant-b" in text

    def test_html_renders_from_multiprocess_capture(self, sharded_fleet):
        html = dashboard_html(sharded_fleet)
        assert html.startswith("<!doctype html>")
        assert "runtime:shard1" in html
        assert 'src="http' not in html

    def test_chrome_trace_valid(self, sharded_fleet):
        assert validate_chrome_trace(sharded_fleet.chrome_trace()) == []


class TestDashboardCli:
    def test_from_artifact_to_html(self, failover_fleet, tmp_path,
                                   capsys):
        from repro.cli import main
        artifact = failover_fleet.save(str(tmp_path / "fleet.json"))
        html_out = str(tmp_path / "dash.html")
        trace_out = str(tmp_path / "fleet-trace.json")
        assert main(["dashboard", "--from-artifact", artifact,
                     "--html", html_out, "--trace-out", trace_out]) == 0
        out = capsys.readouterr().out
        assert "runtime:failover" in out
        assert open(html_out).read().startswith("<!doctype html>")
        payload = json.load(open(trace_out))
        assert validate_chrome_trace(payload) == []
