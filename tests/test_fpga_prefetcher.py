"""Tests for the prefetch policies and their agent integration."""

import pytest

import repro.common.units as u
from repro.cluster.memnode import MemoryNode
from repro.common.errors import ConfigError
from repro.fpga.agent import AgentConfig, MemoryAgent
from repro.fpga.fmem import FMemCache
from repro.fpga.prefetcher import (
    LeapPrefetcher,
    NextPagePrefetcher,
    NoPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from repro.fpga.translation import RemoteTranslationMap
from repro.mem.address import AddressRange
from repro.net.fabric import Fabric


class TestNextPage:
    def test_prefetches_successor(self):
        p = NextPagePrefetcher()
        assert p.on_access(10) == [11]

    def test_repeat_access_silent(self):
        p = NextPagePrefetcher()
        p.on_access(10)
        assert p.on_access(10) == []

    def test_depth(self):
        p = NextPagePrefetcher(depth=3)
        assert p.on_access(5) == [6, 7, 8]


class TestStride:
    def test_detects_constant_stride(self):
        p = StridePrefetcher(depth=2, confirm=2)
        assert p.on_access(0) == []
        assert p.on_access(4) == []          # first delta: unconfirmed
        assert p.on_access(8) == [12, 16]    # confirmed stride of 4

    def test_resets_on_break(self):
        p = StridePrefetcher(depth=1, confirm=2)
        for page in (0, 4, 8):
            p.on_access(page)
        assert p.on_access(100) == []        # trend broken

    def test_negative_stride(self):
        p = StridePrefetcher(depth=1, confirm=2)
        p.on_access(100)
        p.on_access(90)
        assert p.on_access(80) == [70]


class TestLeap:
    def test_majority_trend_survives_noise(self):
        p = LeapPrefetcher(window=5, max_depth=4)
        # Establish a +1 trend with one outlier inside the window.
        for page in (0, 1, 2, 50, 51):
            p.on_access(page)
        # Deltas: [1, 1, 48, 1] -> majority is +1.
        out = p.on_access(52)
        assert out and all(page > 52 for page in out)
        assert out[0] == 53

    def test_depth_grows_with_confidence(self):
        p = LeapPrefetcher(window=4, max_depth=8)
        sizes = []
        for page in range(1, 10):
            sizes.append(len(p.on_access(page)))
        assert sizes[-1] > sizes[1]          # window expanded

    def test_no_majority_no_prefetch(self):
        p = LeapPrefetcher(window=4)
        for page in (0, 10, 3, 77, 21):      # chaotic deltas
            out = p.on_access(page)
        assert out == []

    def test_factory(self):
        assert isinstance(make_prefetcher("leap"), LeapPrefetcher)
        assert isinstance(make_prefetcher("none"), NoPrefetcher)
        with pytest.raises(ConfigError):
            make_prefetcher("psychic")


class TestAgentIntegration:
    def _agent(self, prefetcher):
        vfmem = AddressRange(0, 16 * u.MB)
        fabric = Fabric()
        node = MemoryNode("m0", 64 * u.MB, fabric, slab_bytes=16 * u.MB)
        tmap = RemoteTranslationMap(0, 16 * u.MB)
        tmap.bind(0, node.grant_slab())
        return MemoryAgent(vfmem, FMemCache(4 * u.MB), tmap,
                           prefetcher=prefetcher)

    def test_stride_prefetcher_covers_strided_scan(self):
        agent = self._agent(StridePrefetcher(depth=2, confirm=2))
        misses = 0
        for i in range(0, 64):
            page_addr = i * 2 * u.PAGE_4K      # stride-2 page scan
            before = agent.counters["remote_fetches"]
            agent.directory.get_shared(page_addr, 1)
            misses += agent.counters["remote_fetches"] - before
        # After stride confirmation, almost everything is prefetched.
        assert misses < 12
        assert agent.counters["pages_prefetched"] > 40

    def test_leap_prefetcher_on_sequential(self):
        agent = self._agent(LeapPrefetcher())
        for i in range(64):
            agent.directory.get_shared(i * u.PAGE_4K, 1)
        assert agent.counters["pages_prefetched"] > 30

    def test_explicit_prefetcher_overrides_config_flag(self):
        vfmem = AddressRange(0, 16 * u.MB)
        fabric = Fabric()
        node = MemoryNode("m0", 64 * u.MB, fabric, slab_bytes=16 * u.MB)
        tmap = RemoteTranslationMap(0, 16 * u.MB)
        tmap.bind(0, node.grant_slab())
        agent = MemoryAgent(vfmem, FMemCache(4 * u.MB), tmap,
                            config=AgentConfig(prefetch_next_page=True),
                            prefetcher=NoPrefetcher())
        agent.directory.get_shared(0, 1)
        assert agent.counters["pages_prefetched"] == 0
