"""Tests for the sim-clock span tracer and periodic sampler."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.obs import MetricsRegistry, Sampler, Tracer
from repro.obs.trace import NULL_SPAN, traced


class TestDisabledTracer:
    def test_span_is_shared_null_singleton(self):
        tracer = Tracer(SimClock(), enabled=False)
        assert tracer.span("x") is NULL_SPAN
        assert tracer.span("y") is NULL_SPAN

    def test_nothing_recorded(self):
        tracer = Tracer(SimClock(), enabled=False)
        with tracer.span("x"):
            tracer.emit("child", 100.0)
            tracer.instant("mark")
            tracer.counter("c", value=1)
        assert tracer.events == []

    def test_null_span_api_is_noop(self):
        span = NULL_SPAN
        span.extend(50.0)
        span.set(foo=1)


class TestSpans:
    def test_span_follows_the_clock(self):
        clock = SimClock()
        tracer = Tracer(clock, enabled=True)
        clock.advance(100.0)
        with tracer.span("work", "cat", page=3):
            clock.advance(40.0)
        [event] = tracer.events
        assert event["ph"] == "X"
        assert event["ts"] == 100.0
        assert event["dur"] == 40.0
        assert event["args"] == {"page": 3}

    def test_extend_charges_invisible_time(self):
        tracer = Tracer(SimClock(), enabled=True)
        with tracer.span("work") as span:
            span.extend(250.0)
        assert tracer.events[0]["dur"] == 250.0

    def test_children_lay_out_sequentially(self):
        # The clock never moves: the cursor must still order children.
        tracer = Tracer(SimClock(), enabled=True)
        with tracer.span("parent"):
            tracer.emit("a", 100.0)
            tracer.emit("b", 50.0)
        a, b, parent = tracer.events
        assert a["ts"] == 0.0 and a["dur"] == 100.0
        assert b["ts"] == 100.0 and b["dur"] == 50.0
        assert parent["name"] == "parent"
        assert parent["dur"] == 150.0   # children advanced the cursor

    def test_nested_spans_nest_on_the_timeline(self):
        tracer = Tracer(SimClock(), enabled=True)
        with tracer.span("outer") as outer:
            outer.extend(10.0)
            with tracer.span("inner"):
                tracer.emit("leaf", 30.0)
        leaf, inner, outer_ev = tracer.events
        assert inner["ts"] >= outer_ev["ts"]
        assert inner["dur"] == 30.0
        assert outer_ev["dur"] >= inner["dur"]

    def test_sequential_roots_do_not_overlap(self):
        tracer = Tracer(SimClock(), enabled=True)
        with tracer.span("first") as s:
            s.extend(100.0)
        with tracer.span("second") as s:
            s.extend(100.0)
        first, second = tracer.events
        assert second["ts"] >= first["ts"] + first["dur"]

    def test_instant_and_counter_events(self):
        tracer = Tracer(SimClock(), enabled=True)
        tracer.instant("health.DEGRADED", "health", reason="kill")
        tracer.counter("occupancy", value=0.5)
        instant, counter = tracer.events
        assert instant["ph"] == "i"
        assert instant["args"]["reason"] == "kill"
        assert counter["ph"] == "C"
        assert counter["args"] == {"value": 0.5}

    def test_max_events_drops_not_grows(self):
        tracer = Tracer(SimClock(), enabled=True, max_events=3)
        for _ in range(10):
            tracer.instant("tick")
        assert len(tracer.events) == 3
        assert tracer.dropped == 7

    def test_clear_resets(self):
        tracer = Tracer(SimClock(), enabled=True, max_events=1)
        tracer.instant("a")
        tracer.instant("b")
        tracer.clear()
        assert tracer.events == [] and tracer.dropped == 0


class TestTracedDecorator:
    class Widget:
        def __init__(self, tracer):
            self.tracer = tracer

        @traced("widget.work", cat="test")
        def work(self):
            """Do traced work."""
            return 42

    def test_runs_without_tracer(self):
        widget = self.Widget(None)
        assert widget.work() == 42

    def test_records_span_when_enabled(self):
        tracer = Tracer(SimClock(), enabled=True)
        widget = self.Widget(tracer)
        assert widget.work() == 42
        assert tracer.events[0]["name"] == "widget.work"

    def test_silent_when_disabled(self):
        tracer = Tracer(SimClock(), enabled=False)
        widget = self.Widget(tracer)
        widget.work()
        assert tracer.events == []


class TestSampler:
    def test_interval_gating(self):
        clock = SimClock()
        reg = MetricsRegistry(clock=clock)
        reg.gauge("memory.depth", fn=lambda: 1)
        sampler = Sampler(reg, interval_ns=100.0, clock=clock)
        assert sampler.maybe_sample() is True    # t=0 fires
        assert sampler.maybe_sample() is False   # not due yet
        clock.advance(100.0)
        assert sampler.maybe_sample() is True
        assert len(sampler.samples) == 2

    def test_rows_hold_numeric_gauges_only(self):
        reg = MetricsRegistry()
        reg.gauge("memory.depth", fn=lambda: 3)
        reg.gauge("health.state", fn=lambda: "HEALTHY")
        row = Sampler(reg, interval_ns=1.0).sample()
        assert row == {"memory.depth": 3.0}

    def test_emits_counter_events_to_tracer(self):
        clock = SimClock()
        reg = MetricsRegistry(clock=clock)
        reg.gauge("memory.depth", fn=lambda: 3)
        tracer = Tracer(clock, enabled=True)
        Sampler(reg, tracer=tracer, interval_ns=1.0, clock=clock).sample()
        assert tracer.events[0]["ph"] == "C"
        assert tracer.events[0]["name"] == "memory.depth"

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigError):
            Sampler(MetricsRegistry(), interval_ns=0.0)
