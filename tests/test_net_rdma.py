"""Tests for RDMA verbs: registration, batching, completions, inline."""

import pytest

import repro.common.units as u
from repro.common.errors import ConfigError, NetworkError
from repro.net.fabric import Fabric
from repro.net.rdma import (
    MAX_INLINE,
    CompletionQueue,
    OpCode,
    QueuePair,
    WorkRequest,
)


@pytest.fixture
def qp():
    f = Fabric()
    f.add_node("a")
    f.add_node("b")
    pair = QueuePair(f, "a", "b")
    pair.register("a", 0, 1 * u.MB)
    pair.register("b", 0, 1 * u.MB)
    return pair


class TestRegistration:
    def test_unregistered_local_buffer_rejected(self, qp):
        wr = WorkRequest(OpCode.RDMA_WRITE, 2 * u.MB, 0, 64)
        with pytest.raises(NetworkError):
            qp.post([wr])

    def test_unregistered_remote_buffer_rejected(self, qp):
        wr = WorkRequest(OpCode.RDMA_WRITE, 0, 2 * u.MB, 64)
        with pytest.raises(NetworkError):
            qp.post([wr])

    def test_region_boundary_enforced(self, qp):
        wr = WorkRequest(OpCode.RDMA_WRITE, u.MB - 32, 0, 64)
        with pytest.raises(NetworkError):
            qp.post([wr])

    def test_invalid_region_size_rejected(self, qp):
        with pytest.raises(ConfigError):
            qp.register("a", 0, 0)


class TestPosting:
    def test_write_advances_clock(self, qp):
        elapsed = qp.write(0, 0, 4096)
        assert elapsed > 0
        assert qp.fabric.clock.now == elapsed

    def test_batch_cheaper_than_individual(self, qp):
        batch = [WorkRequest(OpCode.RDMA_WRITE, i * 64, i * 64, 64,
                             signaled=(i == 9)) for i in range(10)]
        batched_cost = qp.post(batch)
        individual_cost = sum(
            qp.post([WorkRequest(OpCode.RDMA_WRITE, i * 64, i * 64, 64)])
            for i in range(10))
        assert batched_cost < individual_cost
        assert qp.counters["doorbells"] == 11

    def test_empty_chain_rejected(self, qp):
        with pytest.raises(ConfigError):
            qp.post([])

    def test_zero_byte_wr_rejected(self, qp):
        with pytest.raises(ConfigError):
            qp.post([WorkRequest(OpCode.RDMA_WRITE, 0, 0, 0)])


class TestCompletions:
    def test_signaled_wr_produces_cqe(self, qp):
        qp.write(0, 0, 64, signaled=True)
        assert len(qp.cq) == 1
        completions = qp.cq.poll()
        assert completions[0].opcode is OpCode.RDMA_WRITE
        assert len(qp.cq) == 0

    def test_unsignaled_wr_produces_no_cqe(self, qp):
        qp.write(0, 0, 64, signaled=False)
        assert len(qp.cq) == 0

    def test_poll_costs_time(self, qp):
        cq = qp.cq
        before = qp.fabric.clock.now
        cq.poll()
        assert qp.fabric.clock.now > before

    def test_poll_respects_max_entries(self, qp):
        for _ in range(5):
            qp.write(0, 0, 64, signaled=True)
        got = qp.cq.poll(max_entries=3)
        assert len(got) == 3
        assert len(qp.cq) == 2


class TestInline:
    def test_inline_skips_registration_check_locally(self, qp):
        # Inline data rides in the WQE: the local buffer needs no MR.
        wr = WorkRequest(OpCode.RDMA_WRITE, 5 * u.MB, 0, 64, inline=True)
        qp.post([wr])   # must not raise

    def test_inline_size_cap(self, qp):
        wr = WorkRequest(OpCode.RDMA_WRITE, 0, 0, MAX_INLINE + 1, inline=True)
        with pytest.raises(NetworkError):
            qp.post([wr])

    def test_inline_read_rejected(self, qp):
        wr = WorkRequest(OpCode.RDMA_READ, 0, 0, 64, inline=True)
        with pytest.raises(NetworkError):
            qp.post([wr])


class TestReads:
    def test_read_is_signaled(self, qp):
        qp.read(0, 0, 4096)
        assert len(qp.cq) == 1

    def test_qp_requires_known_nodes(self):
        f = Fabric()
        f.add_node("a")
        with pytest.raises(ConfigError):
            QueuePair(f, "a", "ghost")
