"""Tests for the runtime telemetry snapshot."""

import pytest

import repro.common.units as u
from repro.kona import snapshot


class TestTelemetry:
    def test_sections_present(self, runtime):
        snap = snapshot(runtime)
        assert set(snap.data) == {"memory", "fetch", "tracking",
                                  "eviction", "faults", "health", "network"}

    def test_health_section_starts_clean(self, runtime):
        health = snapshot(runtime).data["health"]
        assert health["state"] == "HEALTHY"
        assert health["degradations"] == 0
        assert health["parked_records"] == 0
        assert health["mttr_ns"] == 0.0

    def test_reflects_activity(self, runtime):
        region = runtime.mmap(1 * u.MB)
        runtime.write(region.start)
        runtime.read(region.start + u.PAGE_4K)
        snap = snapshot(runtime)
        assert snap.data["fetch"]["remote_fetches"] >= 2
        assert snap.data["memory"]["live_alloc_bytes"] == 1 * u.MB
        assert snap.data["faults"]["page_faults"] == 0
        assert snap.data["network"]["transfers"] >= 0

    def test_flat_keys(self, runtime):
        flat = snapshot(runtime).flat()
        assert "memory.fmem_bytes" in flat
        assert "eviction.dirty_bytes" in flat

    def test_render_is_readable(self, runtime):
        text = snapshot(runtime).render()
        assert "memory" in text
        assert "remote_fetches" in text

    def test_tracking_counts_dirty_lines(self, runtime):
        region = runtime.mmap(1 * u.MB)
        runtime.write(region.start)
        runtime.cpu_cache.flush_tracked()
        snap = snapshot(runtime)
        assert snap.data["tracking"]["dirty_lines_pending"] == 1
