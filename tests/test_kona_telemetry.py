"""Tests for the runtime telemetry snapshot."""

import pytest

import repro.common.units as u
from repro.common.errors import ConfigError
from repro.kona import snapshot
from repro.kona.telemetry import TelemetrySnapshot


class TestTelemetry:
    def test_sections_present(self, runtime):
        snap = snapshot(runtime)
        assert set(snap.data) == {"memory", "fetch", "tracking",
                                  "eviction", "faults", "health", "network",
                                  "coherence", "replication"}

    def test_health_section_starts_clean(self, runtime):
        health = snapshot(runtime).data["health"]
        assert health["state"] == "HEALTHY"
        assert health["degradations"] == 0
        assert health["parked_records"] == 0
        assert health["mttr_ns"] == 0.0

    def test_reflects_activity(self, runtime):
        region = runtime.mmap(1 * u.MB)
        runtime.write(region.start)
        runtime.read(region.start + u.PAGE_4K)
        snap = snapshot(runtime)
        assert snap.data["fetch"]["remote_fetches"] >= 2
        assert snap.data["memory"]["live_alloc_bytes"] == 1 * u.MB
        assert snap.data["faults"]["page_faults"] == 0
        assert snap.data["network"]["transfers"] >= 0

    def test_flat_keys(self, runtime):
        flat = snapshot(runtime).flat()
        assert "memory.fmem_bytes" in flat
        assert "eviction.dirty_bytes" in flat

    def test_flat_order_is_deterministic(self, runtime):
        flat = snapshot(runtime).flat()
        assert list(flat) == sorted(flat)

    def test_flat_rejects_dotted_key_collision(self):
        snap = TelemetrySnapshot(data={"a": {"b.c": 1}, "a.b": {"c": 2}})
        with pytest.raises(ConfigError):
            snap.flat()

    def test_coherence_section_tracks_directory(self, runtime):
        region = runtime.mmap(1 * u.MB)
        runtime.write(region.start)
        coherence = snapshot(runtime).data["coherence"]
        assert coherence["get_m"] >= 1

    def test_snapshot_is_live_registry_view(self, runtime):
        region = runtime.mmap(1 * u.MB)
        before = snapshot(runtime).data["fetch"]["remote_fetches"]
        runtime.read(region.start)
        after = snapshot(runtime).data["fetch"]["remote_fetches"]
        assert after > before

    def test_render_is_readable(self, runtime):
        text = snapshot(runtime).render()
        assert "memory" in text
        assert "remote_fetches" in text

    def test_tracking_counts_dirty_lines(self, runtime):
        region = runtime.mmap(1 * u.MB)
        runtime.write(region.start)
        runtime.cpu_cache.flush_tracked()
        snap = snapshot(runtime)
        assert snap.data["tracking"]["dirty_lines_pending"] == 1
