"""Tests for the append-only time-series store."""

import math

import pytest

from repro.common.errors import ConfigError
from repro.obs import TimeSeriesStore


def make_counter_store():
    """A monotonically increasing counter sampled every 10 ns."""
    store = TimeSeriesStore()
    for i in range(11):
        store.append(i * 10.0, "hits", float(i * 5))
    return store


class TestIngest:
    def test_append_and_series(self):
        store = make_counter_store()
        assert len(store) == 11
        assert "hits" in store
        assert store.names() == ["hits"]
        assert store.series("hits")[0] == (0.0, 0.0)
        assert store.series("hits")[-1] == (100.0, 50.0)

    def test_range_query_is_inclusive(self):
        store = make_counter_store()
        window = store.series("hits", 20.0, 40.0)
        assert [ts for ts, _ in window] == [20.0, 30.0, 40.0]

    def test_out_of_order_append_raises(self):
        store = make_counter_store()
        with pytest.raises(ConfigError):
            store.append(5.0, "hits", 99.0)

    def test_equal_timestamp_append_allowed(self):
        store = make_counter_store()
        store.append(100.0, "hits", 51.0)
        assert store.latest("hits") == (100.0, 51.0)

    def test_append_row_fans_out_per_series(self):
        store = TimeSeriesStore()
        store.append_row(1.0, {"a": 1.0, "b": 2.0})
        store.append_row(2.0, {"a": 3.0, "b": 4.0})
        assert store.names() == ["a", "b"]
        assert store.series("b") == [(1.0, 2.0), (2.0, 4.0)]

    def test_from_rows(self):
        store = TimeSeriesStore.from_rows(
            [(0.0, {"x": 1.0}), (10.0, {"x": 2.0})])
        assert store.series("x") == [(0.0, 1.0), (10.0, 2.0)]

    def test_span_ns(self):
        assert TimeSeriesStore().span_ns == (0.0, 0.0)
        assert make_counter_store().span_ns == (0.0, 100.0)


class TestQueries:
    def test_latest(self):
        store = make_counter_store()
        assert store.latest("hits") == (100.0, 50.0)
        assert store.latest("nope") is None

    def test_aggregates(self):
        store = make_counter_store()
        assert store.aggregate("hits", agg="max") == 50.0
        assert store.aggregate("hits", agg="min") == 0.0
        assert store.aggregate("hits", agg="first") == 0.0
        assert store.aggregate("hits", agg="last") == 50.0
        assert store.aggregate("hits", agg="delta") == 50.0
        assert store.aggregate("hits", agg="avg") == 25.0

    def test_aggregate_empty_is_nan(self):
        assert math.isnan(TimeSeriesStore().aggregate("hits"))

    def test_unknown_aggregate_raises(self):
        with pytest.raises(ConfigError):
            make_counter_store().aggregate("hits", agg="median")

    def test_rate_counter_per_simulated_second(self):
        # 50 increments over 100 ns -> 5e8 per second.
        store = make_counter_store()
        assert store.rate("hits") == pytest.approx(5e8)

    def test_rate_needs_two_points(self):
        store = TimeSeriesStore()
        store.append(0.0, "hits", 1.0)
        assert math.isnan(store.rate("hits"))

    def test_rollup_bins_aligned_and_sparse(self):
        store = TimeSeriesStore()
        for ts, v in [(5.0, 1.0), (15.0, 3.0), (95.0, 10.0)]:
            store.append(ts, "g", v)
        # Bins of 10 ns from t=0; the empty middle bins are skipped.
        assert store.rollup("g", 10.0, agg="avg") == [
            (10.0, 1.0), (20.0, 3.0), (100.0, 10.0)]

    def test_rollup_aggregates_within_bin(self):
        store = TimeSeriesStore()
        for ts, v in [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]:
            store.append(ts, "g", v)
        assert store.rollup("g", 10.0, agg="max") == [(10.0, 6.0)]
        assert store.rollup("g", 10.0, agg="delta") == [(10.0, 4.0)]

    def test_rollup_invalid_window_raises(self):
        with pytest.raises(ConfigError):
            make_counter_store().rollup("hits", 0.0)


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        store = make_counter_store()
        store.append(3.0, "other", 7.5)
        path = store.dump_jsonl(str(tmp_path / "series.jsonl"))
        loaded = TimeSeriesStore.load_jsonl(path)
        assert loaded.as_dict() == store.as_dict()

    def test_load_ingests_sample_rows(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"type": "event", "name": "x", "ph": "i", "ts": 1}\n'
            '{"type": "sample", "ts": 2.0, "gauges": {"a": 5.0}}\n'
            '{"type": "point", "ts": 3.0, "name": "a", "value": 6.0}\n')
        store = TimeSeriesStore.load_jsonl(str(path))
        assert store.series("a") == [(2.0, 5.0), (3.0, 6.0)]
