"""Property-based tests (hypothesis) for core data structures.

These pin down the invariants the rest of the system leans on: dirty
bitmaps never lose or invent lines, the coherence protocol conserves
dirty data, caches never exceed their geometry, amplification is always
>= 1 and ordered by granularity, and the eviction log is FIFO.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.common.units as u
from repro.cache.setassoc import SetAssociativeCache
from repro.coherence.agent import CoherentCache
from repro.coherence.directory import Directory
from repro.fpga.bitmap import DirtyBitmap
from repro.kona.alloclib import MIN_ALIGN
from repro.mem.address import AddressRange
from repro.net.ring import LogRecord, RingBufferLog
from repro.tools.pintool import analyze_window
from repro.workloads import make_trace


lines = st.lists(st.integers(min_value=0, max_value=63),
                 min_size=1, max_size=64)


class TestBitmapProperties:
    @given(lines)
    def test_marked_lines_are_exactly_reported(self, line_ids):
        bitmap = DirtyBitmap()
        for line in line_ids:
            bitmap.mark_line(line * u.CACHE_LINE)
        expected = sorted(set(line_ids))
        reported = [addr // u.CACHE_LINE for addr in bitmap.dirty_lines_of(0)]
        assert reported == expected
        assert bitmap.dirty_line_count(0) == len(expected)

    @given(lines)
    def test_segments_partition_dirty_lines(self, line_ids):
        bitmap = DirtyBitmap()
        for line in line_ids:
            bitmap.mark_line(line * u.CACHE_LINE)
        segments = bitmap.segments_of(0)
        covered = []
        for start, length in segments:
            covered.extend(range(start, start + length))
        assert covered == sorted(set(line_ids))
        # Segments are maximal: no two adjacent segments touch.
        for (s1, l1), (s2, _) in zip(segments, segments[1:]):
            assert s1 + l1 < s2

    @given(lines)
    def test_clear_returns_everything_once(self, line_ids):
        bitmap = DirtyBitmap()
        for line in line_ids:
            bitmap.mark_line(line * u.CACHE_LINE)
        mask = bitmap.clear_page(0)
        assert mask.bit_count() == len(set(line_ids))
        assert bitmap.clear_page(0) == 0


class TestCacheProperties:
    @given(st.lists(st.tuples(st.integers(0, 2**20), st.booleans()),
                    min_size=1, max_size=300))
    def test_geometry_never_exceeded(self, accesses):
        cache = SetAssociativeCache("P", 4 * u.KB, 64, 4)
        for addr, is_write in accesses:
            cache.access(addr, is_write)
        assert cache.occupancy <= 64
        for lines_in_set in cache._lines:
            assert len(lines_in_set) <= 4

    @given(st.lists(st.tuples(st.integers(0, 2**16), st.booleans()),
                    min_size=1, max_size=300))
    def test_accesses_conserved(self, accesses):
        cache = SetAssociativeCache("P", 4 * u.KB, 64, 4)
        for addr, is_write in accesses:
            cache.access(addr, is_write)
        assert cache.stats.hits + cache.stats.misses == len(accesses)
        assert cache.stats.dirty_writebacks <= cache.stats.evictions

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    def test_just_accessed_block_is_resident(self, blocks):
        cache = SetAssociativeCache("P", 4 * u.KB, 64, 4)
        for block in blocks:
            cache.access(block * 64, False)
            assert cache.probe(block * 64)


class TestCoherenceProperties:
    @given(st.lists(st.tuples(st.integers(0, 127), st.booleans()),
                    min_size=1, max_size=400))
    @settings(deadline=None)
    def test_dirty_writeback_conservation(self, accesses):
        """Every line written is reported dirty exactly once overall."""
        home = AddressRange(0, u.MB)
        directory = Directory(home)
        writebacks = []
        directory.subscribe(
            lambda e: writebacks.append(e.line_addr)
            if e.kind.name in ("DIRTY_WRITEBACK", "SNOOPED") else None)
        cache = CoherentCache(0, lambda a: directory, capacity=2 * u.KB,
                              ways=2)
        cache.attach(directory)
        written = set()
        for line, is_write in accesses:
            addr = line * u.CACHE_LINE
            cache.access(addr, is_write)
            if is_write:
                written.add(addr)
        cache.flush_tracked()
        # Each written line reaches the directory at least once, and
        # the set of written-back lines is exactly the written set.
        assert set(writebacks) == written

    @given(st.lists(st.tuples(st.integers(0, 63), st.sampled_from(
        ["gets", "getm", "putm", "snoop"])), min_size=1, max_size=300))
    @settings(deadline=None)
    def test_directory_invariants_never_violated(self, ops):
        home = AddressRange(0, u.MB)
        directory = Directory(home)
        cache = CoherentCache(0, lambda a: directory, capacity=2 * u.KB,
                              ways=2)
        cache.attach(directory)
        # Drive through the cache agent (which only issues legal ops);
        # entry invariants are asserted inside the directory itself.
        for line, op in ops:
            addr = line * u.CACHE_LINE
            if op == "gets":
                cache.access(addr, False)
            elif op == "getm":
                cache.access(addr, True)
            elif op == "snoop":
                directory.snoop(addr)
            else:
                cache.flush_tracked()


class TestRingProperties:
    @given(st.lists(st.integers(1, 5), min_size=1, max_size=30))
    def test_fifo_order_preserved(self, batch_sizes):
        ring = RingBufferLog(capacity_records=1000)
        sent = []
        counter = 0
        for size in batch_sizes:
            batch = []
            for _ in range(size):
                batch.append(LogRecord(counter * 64))
                sent.append(counter * 64)
                counter += 1
            ring.append(batch)
        received = [r.remote_addr for r in ring.consume()]
        assert received == sent

    @given(st.lists(st.sampled_from(["append", "consume", "ack"]),
                    min_size=1, max_size=60))
    def test_cursors_never_go_negative(self, ops):
        ring = RingBufferLog(capacity_records=8)
        for op in ops:
            if op == "append" and ring.free_records > 0:
                ring.append([LogRecord(0)])
            elif op == "consume":
                ring.consume(max_records=2)
            else:
                ring.acknowledge()
            assert 0 <= ring.free_records <= 8
            assert ring.unacked_records >= 0
            assert len(ring) >= 0


class TestAmplificationProperties:
    @given(st.lists(st.tuples(st.integers(0, 2**18),
                              st.integers(1, 64)),
                    min_size=1, max_size=100))
    def test_amplification_ordering(self, writes):
        """amp(2MB) >= amp(4KB) >= amp(64B) >= 1 for any write set."""
        addrs = np.array([a for a, _ in writes], dtype=np.uint64)
        sizes = np.array([s for _, s in writes], dtype=np.uint32)
        trace = make_trace(addrs, sizes, np.ones(len(writes), dtype=bool),
                           np.zeros(len(writes), dtype=np.uint32),
                           2 * u.PAGE_2M)
        rec = analyze_window(trace, 0)
        assert rec.amp_2m >= rec.amp_4k >= rec.amp_cl >= 1.0 - 1e-9

    @given(st.integers(0, 2**18), st.integers(1, 64))
    def test_unique_bytes_bounded_by_write_size(self, addr, size):
        trace = make_trace(np.array([addr], dtype=np.uint64),
                           np.array([size], dtype=np.uint32),
                           np.array([True]),
                           np.array([0], dtype=np.uint32), 2 * u.PAGE_2M)
        rec = analyze_window(trace, 0)
        # Word-granularity rounding adds at most 14 bytes (7 each end).
        assert size <= rec.unique_bytes <= size + 14


class TestAlignmentProperty:
    @given(st.integers(1, 10_000))
    def test_malloc_alignment_and_rounding(self, size):
        rounded = -(-size // MIN_ALIGN) * MIN_ALIGN
        assert rounded >= size
        assert rounded % MIN_ALIGN == 0
        assert rounded - size < MIN_ALIGN
