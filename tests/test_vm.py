"""Tests for the virtual-memory baseline machinery."""

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import ConfigError
from repro.vm.faults import FaultPath, PageFaultModel
from repro.vm.swap import PagedConfig, PagedRemoteMemory
from repro.vm.writeprotect import WriteProtectTracker


class TestFaultModel:
    def test_kernel_swap_costlier_than_userfaultfd(self):
        swap = PageFaultModel(FaultPath.KERNEL_SWAP)
        uffd = PageFaultModel(FaultPath.USERFAULTFD)
        assert swap.costs.major_fault_ns > uffd.costs.major_fault_ns

    def test_fault_counters(self):
        m = PageFaultModel(FaultPath.USERFAULTFD)
        m.fetch_fault_ns()
        m.write_protect_fault_ns()
        assert m.counters["major_faults"] == 1
        assert m.counters["wp_faults"] == 1

    def test_protect_round_scales_with_pages(self):
        m = PageFaultModel(FaultPath.USERFAULTFD)
        assert m.protect_pages_ns(100) > m.protect_pages_ns(10)
        assert m.protect_pages_ns(0) == 0.0

    def test_shootdown_scales_with_cores(self):
        few = PageFaultModel(FaultPath.USERFAULTFD, num_cores=2)
        many = PageFaultModel(FaultPath.USERFAULTFD, num_cores=32)
        assert many.costs.shootdown_ns > few.costs.shootdown_ns

    def test_negative_pages_rejected(self):
        m = PageFaultModel(FaultPath.USERFAULTFD)
        with pytest.raises(ConfigError):
            m.evict_pages_ns(-1)


class TestWriteProtectTracker:
    def _tracker(self):
        return WriteProtectTracker(PageFaultModel(FaultPath.USERFAULTFD))

    def test_first_write_faults_once(self):
        t = self._tracker()
        t.track({0, 1, 2})
        t.begin_window()
        assert t.on_write(0) > 0     # first write: fault
        assert t.on_write(0) == 0    # second write: no fault
        assert t.dirty_pages() == {0}

    def test_window_reprotects(self):
        t = self._tracker()
        t.track({0})
        t.begin_window()
        t.on_write(0)
        t.begin_window()
        assert t.on_write(0) > 0     # faults again after re-protection

    def test_untracked_page_becomes_tracked(self):
        t = self._tracker()
        t.begin_window()
        t.on_write(42)
        t.begin_window()
        assert t.on_write(42) > 0

    def test_vectorized_window(self):
        t = self._tracker()
        addrs = np.array([0, 100, 5000, 5050, 9000], dtype=np.uint64)
        t.track({0, 1, 2})
        t.begin_window()
        cost = t.process_window(addrs)
        assert cost > 0
        assert t.dirty_pages() == {0, 1, 2}
        assert t.counters["first_writes"] == 3

    def test_dirty_bytes_page_granularity(self):
        t = self._tracker()
        t.begin_window()
        t.on_write(3)
        assert t.dirty_bytes() == u.PAGE_4K


class TestPagedRemoteMemory:
    def _engine(self, capacity_pages=4, **kwargs):
        config = PagedConfig(name="test", fault_path=FaultPath.USERFAULTFD,
                             local_capacity=capacity_pages * u.PAGE_4K,
                             **kwargs)
        return PagedRemoteMemory(config, app_ns_per_access=10.0)

    def test_miss_costs_fault_plus_network(self):
        engine = self._engine()
        cost = engine.access(0, False)
        assert cost > engine.latency.rdma_transfer_ns(u.PAGE_4K, linked=True)
        assert engine.counters["pages_fetched"] == 1

    def test_hit_is_free_except_wp(self):
        engine = self._engine()
        engine.access(0, False)
        assert engine.access(100, False) == 0.0

    def test_first_write_pays_wp_fault(self):
        engine = self._engine()
        engine.access(0, False)
        cost = engine.access(0, True)
        assert cost > 0
        assert engine.access(50, True) == 0.0   # already unprotected

    def test_eviction_on_capacity(self):
        engine = self._engine(capacity_pages=2)
        for page in range(3):
            engine.access(page * u.PAGE_4K, True)
        assert engine.counters["evictions"] == 1
        assert engine.resident_pages == 2

    def test_dirty_eviction_writes_page_back(self):
        engine = self._engine(capacity_pages=1)
        engine.access(0, True)
        engine.access(u.PAGE_4K, False)
        assert engine.bytes_written_back == u.PAGE_4K

    def test_clean_eviction_silent(self):
        engine = self._engine(capacity_pages=1)
        engine.access(0, False)
        engine.access(u.PAGE_4K, False)
        assert engine.bytes_written_back == 0

    def test_sync_vs_async_eviction(self):
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 64, 200).astype(np.uint64) * u.PAGE_4K)
        writes = np.ones(200, dtype=bool)
        sync = self._engine(capacity_pages=8, async_evict_transfer=False)
        async_ = self._engine(capacity_pages=8, async_evict_transfer=True)
        r_sync = sync.run(addrs, writes)
        r_async = async_.run(addrs.copy(), writes)
        assert r_sync.elapsed_ns > r_async.elapsed_ns
        assert r_async.background_ns > 0

    def test_no_wp_variant_skips_wp_faults(self):
        engine = self._engine(track_dirty=False)
        engine.access(0, False)
        assert engine.access(0, True) == 0.0
        assert engine.account["wp_fault"] == 0.0

    def test_report_accounting_consistent(self):
        engine = self._engine(capacity_pages=4)
        addrs = np.arange(16, dtype=np.uint64) * u.PAGE_4K
        report = engine.run(addrs, np.ones(16, dtype=bool))
        assert report.accesses == 16
        assert report.elapsed_ns > 0
        assert report.counters["pages_fetched"] == 16

    def test_reprotect_all(self):
        engine = self._engine()
        engine.access(0, True)
        engine.reprotect_all()
        assert engine.access(0, True) > 0   # WP fault again

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ConfigError):
            PagedConfig(name="bad", fault_path=FaultPath.USERFAULTFD,
                        local_capacity=100)
