"""Tests for the trace profiler: forests, self time, stalls."""

import pytest

from repro.common.errors import ConfigError
from repro.obs import (
    build_forest,
    critical_path,
    profile,
    stall_windows,
    top_stalls,
)


def x(name, cat, ts, dur):
    """One complete (X) trace event in ns."""
    return {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur}


def sample_events():
    """Two roots; the first nests a child chain and a sibling leaf."""
    return [
        x("fetch.fill", "fetch", 0.0, 100.0),
        x("rdma.read", "rdma", 10.0, 30.0),
        x("net.wire", "net", 12.0, 5.0),
        x("evict.page", "evict", 50.0, 20.0),
        x("fetch.fill", "fetch", 200.0, 50.0),
        {"name": "blip", "cat": "health", "ph": "i", "ts": 5.0},
        {"name": "g", "ph": "C", "ts": 6.0, "args": {"v": 1}},
    ]


class TestForest:
    def test_nesting_reconstructed(self):
        roots = build_forest(sample_events())
        assert [r.name for r in roots] == ["fetch.fill", "fetch.fill"]
        first = roots[0]
        assert [c.name for c in first.children] == ["rdma.read",
                                                    "evict.page"]
        assert [g.name for g in first.children[0].children] == ["net.wire"]
        assert first.children[0].children[0].depth == 2

    def test_non_x_events_ignored(self):
        roots = build_forest([e for e in sample_events()
                              if e["ph"] != "X"])
        assert roots == []

    def test_self_time(self):
        roots = build_forest(sample_events())
        first = roots[0]
        assert first.self_ns == 100.0 - (30.0 + 20.0)
        assert first.children[0].self_ns == 30.0 - 5.0
        assert roots[1].self_ns == 50.0


class TestProfile:
    def test_self_time_conservation(self):
        report = profile(sample_events())
        assert report.total_ns == 150.0
        # Self times over the forest sum back to the root durations.
        assert report.self_total_ns == pytest.approx(report.total_ns)
        assert report.coverage == pytest.approx(1.0)

    def test_empty_trace_coverage_is_one(self):
        assert profile([]).coverage == 1.0

    def test_by_name_aggregation(self):
        report = profile(sample_events())
        fill = report.by_name["fetch.fill"]
        assert fill.count == 2
        assert fill.total_ns == 150.0
        assert fill.self_ns == 100.0

    def test_by_category_aggregation(self):
        report = profile(sample_events())
        assert set(report.by_category) == {"fetch", "rdma", "net", "evict"}
        assert report.by_category["net"].self_ns == 5.0

    def test_top_spans_sorted_by_self(self):
        report = profile(sample_events())
        tops = report.top_spans(2)
        assert tops[0].key == "fetch.fill"
        assert tops[0].self_ns >= tops[1].self_ns

    def test_top_spans_bad_key_raises(self):
        with pytest.raises(ConfigError):
            profile(sample_events()).top_spans(key="dur_ns")


class TestCriticalPath:
    def test_follows_longest_chain(self):
        path = critical_path(build_forest(sample_events()))
        assert [(step[0], step[1]) for step in path] == [
            (0, "fetch.fill"), (1, "rdma.read"), (2, "net.wire")]

    def test_empty_forest(self):
        assert critical_path([]) == []


class TestStallWindows:
    def test_attribution_by_start_window(self):
        windows = stall_windows(build_forest(sample_events()), 100.0)
        # Window (0,100]: root self 50 + rdma self 25 + net 5 + evict 20;
        # window (200,300]: the second root's 50.
        assert windows == [
            (100.0, {"fetch": 50.0, "rdma": 25.0, "net": 5.0,
                     "evict": 20.0}),
            (300.0, {"fetch": 50.0})]

    def test_category_filter(self):
        windows = stall_windows(build_forest(sample_events()), 100.0,
                                categories=("rdma", "net"))
        assert windows == [(100.0, {"rdma": 25.0, "net": 5.0})]

    def test_invalid_window_raises(self):
        with pytest.raises(ConfigError):
            stall_windows([], 0.0)

    def test_top_stalls_ranked(self):
        windows = stall_windows(build_forest(sample_events()), 100.0)
        top = top_stalls(windows, n=2)
        assert top[0][1][0] == ("fetch", 50.0)
        assert len(top[0][1]) == 2


class TestRealTrace:
    def test_flight_campaign_coverage_within_one_percent(self):
        # The acceptance bar: profiling a real traced campaign, the
        # self-time attribution reconstructs total traced time.
        from repro.experiments.flight import run_flight

        _, recorder = run_flight(seed=0, ops=3_000)
        report = profile(recorder.tracer.events)
        assert report.total_ns > 0
        assert abs(report.coverage - 1.0) < 0.01
        assert "fetch" in report.by_category
