"""Tests for repro.common.units."""

import pytest

import repro.common.units as u


class TestConstants:
    def test_sizes_are_consistent(self):
        assert u.KB == 1024
        assert u.MB == 1024 * u.KB
        assert u.GB == 1024 * u.MB
        assert u.PAGE_4K == 4096
        assert u.PAGE_2M == 512 * u.PAGE_4K

    def test_lines_per_page_is_64(self):
        # The paper's analysis hinges on 64 lines per 4 KB page.
        assert u.LINES_PER_PAGE == 64
        assert u.LINES_PER_PAGE * u.CACHE_LINE == u.PAGE_4K

    def test_time_units(self):
        assert u.US == 1000 * u.NS
        assert u.MS == 1000 * u.US
        assert u.S == 1000 * u.MS


class TestConversions:
    def test_ns_to_us(self):
        assert u.ns_to_us(3_000) == 3.0

    def test_ns_to_ms(self):
        assert u.ns_to_ms(2_500_000) == 2.5

    def test_ns_to_s(self):
        assert u.ns_to_s(1e9) == 1.0


class TestHumanFormats:
    def test_bytes_to_human_small(self):
        assert u.bytes_to_human(512) == "512B"

    def test_bytes_to_human_kib(self):
        assert u.bytes_to_human(4096) == "4.0KiB"

    def test_bytes_to_human_gib(self):
        assert u.bytes_to_human(3 * u.GB) == "3.0GiB"

    def test_time_to_human_ns(self):
        assert u.time_to_human(5.0) == "5.0ns"

    def test_time_to_human_us(self):
        assert u.time_to_human(3_000) == "3.0us"

    def test_time_to_human_ms(self):
        assert u.time_to_human(32_000_000) == "32.0ms"

    def test_time_to_human_s(self):
        assert u.time_to_human(1.5e9) == "1.50s"
