"""Tests for the YCSB driver."""

import pytest

import repro.common.units as u
from repro.apps import RemoteKVStore, YCSBDriver
from repro.common.errors import ConfigError
from repro.kona import KonaConfig, KonaRuntime


@pytest.fixture
def driver():
    config = KonaConfig(fmem_capacity=8 * u.MB, vfmem_capacity=64 * u.MB,
                        slab_bytes=16 * u.MB)
    store = RemoteKVStore(KonaRuntime(config), capacity=4096,
                          value_log_bytes=24 * u.MB)
    d = YCSBDriver(store, records=300, seed=1)
    d.load()
    return d


class TestMixes:
    def test_load_populates_all_records(self, driver):
        assert len(driver.store) == 300
        assert driver.store.get("user00000042") is not None

    def test_workload_a_balanced(self, driver):
        result = driver.run("A", operations=400)
        assert result.reads + result.updates == 400
        assert 0.35 < result.reads / 400 < 0.65

    def test_workload_c_read_only(self, driver):
        puts_before = driver.store.stats.puts
        result = driver.run("C", operations=300)
        assert result.reads == 300
        assert driver.store.stats.puts == puts_before

    def test_workload_d_inserts_new_records(self, driver):
        before = len(driver.store)
        result = driver.run("D", operations=400)
        assert result.inserts > 0
        assert len(driver.store) == before + result.inserts

    def test_workload_f_rmw(self, driver):
        result = driver.run("F", operations=200)
        assert result.rmws > 0
        # RMW both reads and writes remotely.
        assert result.stall_ns > 0

    def test_unknown_mix_rejected(self, driver):
        with pytest.raises(ConfigError):
            driver.run("Z")

    def test_lowercase_accepted(self, driver):
        assert driver.run("b", operations=50).mix == "B"


class TestAccounting:
    def test_write_heavy_dirties_more_lines(self, driver):
        a = driver.run("A", operations=400)
        c = driver.run("C", operations=400)
        assert a.dirty_lines > 0
        # Read-only adds nothing beyond what A left behind.
        assert c.updates == 0

    def test_stall_per_op_positive(self, driver):
        result = driver.run("B", operations=200)
        assert result.stall_per_op_ns() > 0
        assert result.remote_fetches >= 0

    def test_zipf_skew_concentrates_reads(self, driver):
        # With strong skew, repeated reads hit the CPU cache: misses
        # per op fall well below one.
        result = driver.run("C", operations=600)
        assert result.remote_fetches < 600
