"""Tests for the parallel sweep runner and the engine benchmark."""

import json

import pytest

from repro.cache.amat import ALL_SYSTEMS
from repro.common import units as u
from repro.common.errors import ConfigError
from repro.experiments.bench import (
    BENCH_FILENAME,
    BenchCase,
    append_history,
    check_speedup,
    history_record,
    load_history,
    run_bench,
    run_case,
    write_bench,
)
from repro.experiments.sweep import (
    SweepPoint,
    run_sweep,
    sweep_grid,
)


class TestSweepGrid:
    def test_grid_is_cross_product_with_positional_seeds(self):
        points = sweep_grid(["redis-rand", "graph-coloring"],
                            [0.25, 0.5], base_seed=100)
        assert len(points) == 4
        assert [p.seed for p in points] == [100, 101, 102, 103]
        assert points[0].workload == "redis-rand"
        assert points[-1].workload == "graph-coloring"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            SweepPoint(workload="nope", cache_fraction=0.5)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigError):
            run_sweep([])


class TestSweepRunner:
    POINTS = sweep_grid(["redis-rand"], [0.25, 0.75], num_ops=2000,
                        base_seed=7)

    def test_serial_results_are_complete(self):
        result = run_sweep(self.POINTS, processes=1)
        assert len(result.amat_ns) == len(self.POINTS)
        for amat in result.amat_ns:
            assert set(amat) == set(ALL_SYSTEMS)
            assert all(v > 0 for v in amat.values())
        for served in result.served:
            assert abs(sum(served.values()) - 1.0) < 1e-9

    def test_parallel_matches_serial(self):
        serial = run_sweep(self.POINTS, processes=1)
        parallel = run_sweep(self.POINTS, processes=2)
        assert serial.amat_ns == parallel.amat_ns
        assert serial.served == parallel.served

    def test_series_extraction(self):
        result = run_sweep(self.POINTS, processes=1)
        series = result.series("kona")
        assert [f for f, _ in series] == [0.25, 0.75]
        # More local cache never slows Kona down on this workload.
        assert series[1][1] <= series[0][1]

    def test_totals_aggregate_per_point_counters(self):
        result = run_sweep(self.POINTS, processes=1)
        assert len(result.counters) == len(self.POINTS)
        per_point = sum(c["accesses"] for c in result.counters)
        assert result.totals["accesses"] == per_point
        assert result.totals["accesses"] >= 2000 * len(self.POINTS)
        assert result.totals["remote_fetches"] > 0

    def test_parallel_totals_match_serial(self):
        serial = run_sweep(self.POINTS, processes=1)
        parallel = run_sweep(self.POINTS, processes=2)
        assert serial.totals.as_dict() == parallel.totals.as_dict()


SMALL_CASE = BenchCase("uniform-stress", 20_000, 0.5, seed=42)


class TestBench:
    def test_run_case_verifies_and_reports(self):
        result = run_case(SMALL_CASE, scalar_runs=1, vectorized_runs=1)
        assert result["counters_match"]
        assert result["speedup"] > 0
        assert result["scalar"]["seconds"] > 0
        assert result["vectorized"]["seconds"] > 0
        assert set(result["level_counters"]) == {"L1", "L2", "L3", "DRAM$"}

    def test_quick_bench_payload_schema(self, tmp_path):
        payload = run_bench(quick=True, cases=[SMALL_CASE])
        assert payload["benchmark"] == "kcachesim-engine-bench"
        assert payload["quick"] is True
        assert payload["canonical_workload"] == "uniform-stress"
        assert payload["canonical_speedup"] == payload["cases"][0]["speedup"]
        path = write_bench(payload, str(tmp_path / BENCH_FILENAME))
        with open(path) as fh:
            assert json.load(fh)["cases"][0]["num_accesses"] == 20_000

    def test_host_metadata_recorded(self):
        payload = run_bench(quick=True, cases=[SMALL_CASE])
        host = payload["host"]
        assert host["python"] and host["numpy"] and host["machine"]
        assert isinstance(host["cpu_count"], int) and host["cpu_count"] >= 1
        # Inside this repo the sha resolves; elsewhere it is None.
        assert host["git_sha"] is None or len(host["git_sha"]) >= 7

    def test_check_speedup_gate(self):
        payload = {"canonical_speedup": 2.0}
        assert check_speedup(payload, 1.5) == []
        failures = check_speedup(payload, 3.0)
        assert len(failures) == 1 and "2.00x" in failures[0]


class TestBenchHistory:
    def test_history_record_is_compact(self):
        payload = run_bench(quick=True, cases=[SMALL_CASE])
        record = history_record(payload)
        assert record["benchmark"] == "kcachesim-engine-bench"
        assert record["canonical_speedup"] == payload["canonical_speedup"]
        case = record["cases"][0]
        assert set(case) == {"workload", "num_accesses", "speedup",
                             "scalar_seconds", "vectorized_seconds"}
        # The bulky per-level counters stay out of the log.
        assert "level_counters" not in case

    def test_append_and_load_roundtrip(self, tmp_path):
        payload = run_bench(quick=True, cases=[SMALL_CASE])
        path = str(tmp_path / "out" / "history.jsonl")
        append_history(payload, path)
        append_history(payload, path)
        records = load_history(path)
        assert len(records) == 2
        assert records[0]["cases"][0]["speedup"] > 0

    def test_load_filters_by_benchmark(self, tmp_path):
        payload = run_bench(quick=True, cases=[SMALL_CASE])
        path = str(tmp_path / "history.jsonl")
        append_history(payload, path)
        assert load_history(path, benchmark="kcachesim-engine-bench")
        assert load_history(path, benchmark="other-bench") == []

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == []


class TestCommittedBenchReport:
    def test_repo_report_meets_acceptance_speedup(self):
        """The committed BENCH_kcachesim.json must record >= 8x.

        The floor allows for runner-hardware variance (observed 9.3x
        to 10.8x across containers for the same code) while still
        catching any real engine regression, which shows up as an
        order-of-magnitude drop.
        """
        import pathlib
        path = pathlib.Path(__file__).resolve().parents[1] / BENCH_FILENAME
        payload = json.loads(path.read_text())
        assert payload["canonical_workload"] == "uniform-stress"
        case = payload["cases"][0]
        assert case["num_accesses"] == 1_000_000
        assert payload["canonical_speedup"] >= 8.0
        assert check_speedup(payload, 8.0) == []

    def test_repo_report_records_environment(self):
        """The committed report must say where its numbers came from."""
        import pathlib
        path = pathlib.Path(__file__).resolve().parents[1] / BENCH_FILENAME
        host = json.loads(path.read_text())["host"]
        assert host["python"] and host["numpy"]
        assert host["cpu_count"] >= 1
        assert host["git_sha"] is None or len(host["git_sha"]) >= 7
