"""Architectural conformance: substrate packages stay runtime-agnostic.

The substrates (`mem`, `cache`, `coherence`, `net`, `vm`, `cluster`,
`fpga`, `common`) model hardware and OS mechanisms; they must not know
about Kona or the evaluation harness.  This keeps them reusable — the
baselines are built from the same parts as the contribution.
"""

import ast
import pathlib

import repro

SUBSTRATES = {"mem", "cache", "coherence", "net", "vm", "cluster",
              "fpga", "common", "obs"}
UPPER_LAYERS = {"kona", "baselines", "tools", "experiments", "apps",
                "workloads", "analysis", "cli", "chaos"}

SRC = pathlib.Path(repro.__file__).parent


def _imports_of(path: pathlib.Path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            yield node.level, node.module
        elif isinstance(node, ast.Import):
            for alias in node.names:
                yield 0, alias.name


class TestLayering:
    def test_substrates_do_not_import_upper_layers(self):
        violations = []
        for pkg in SUBSTRATES:
            for path in (SRC / pkg).rglob("*.py"):
                for level, module in _imports_of(path):
                    root = module.split(".")[0]
                    absolute_hit = any(f"repro.{u}" in module
                                       for u in UPPER_LAYERS)
                    relative_hit = level >= 2 and root in UPPER_LAYERS
                    if absolute_hit or relative_hit:
                        violations.append((str(path), module))
        assert not violations, violations

    def test_every_package_has_docstring(self):
        for pkg in SUBSTRATES | UPPER_LAYERS - {"cli"}:
            init = SRC / pkg / "__init__.py"
            if not init.exists():
                continue
            tree = ast.parse(init.read_text())
            assert ast.get_docstring(tree), f"{pkg} lacks a docstring"

    def test_every_module_has_docstring(self):
        missing = []
        for path in SRC.rglob("*.py"):
            if path.name == "__main__.py":
                continue
            tree = ast.parse(path.read_text())
            if not ast.get_docstring(tree):
                missing.append(str(path))
        assert not missing, missing

    def test_public_functions_have_docstrings(self):
        """Every public def/class is documented.

        Implementations of a documented Protocol interface inherit its
        contract, and closures inside a function are not public API —
        both are exempt.
        """
        missing = []
        for path in SRC.rglob("*.py"):
            tree = ast.parse(path.read_text())
            interface_methods = set()
            for node in tree.body:
                if isinstance(node, ast.ClassDef) and any(
                        getattr(base, "id", "") == "Protocol"
                        for base in node.bases):
                    interface_methods.update(
                        item.name for item in node.body
                        if isinstance(item, ast.FunctionDef)
                        and ast.get_docstring(item))
            def check(node, owner=""):
                for item in getattr(node, "body", []):
                    if isinstance(item, ast.ClassDef):
                        if not item.name.startswith("_"):
                            if not ast.get_docstring(item):
                                missing.append(f"{path.name}:{item.name}")
                            check(item, owner=item.name)
                    elif isinstance(item, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        if item.name.startswith("_"):
                            continue
                        if item.name in interface_methods:
                            continue
                        if not ast.get_docstring(item):
                            missing.append(
                                f"{path.name}:{owner}.{item.name}")
            check(tree)
        assert not missing, missing
