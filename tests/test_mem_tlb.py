"""Tests for the TLB and shootdown models."""

import pytest

from repro.common.errors import ConfigError
from repro.mem.tlb import TLB, ShootdownModel


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(entries=64, ways=4)
        assert not tlb.lookup(5)
        tlb.insert(5)
        assert tlb.lookup(5)

    def test_lru_eviction_within_set(self):
        tlb = TLB(entries=4, ways=4)   # one set
        for vpn in range(4):
            tlb.insert(vpn)
        tlb.lookup(0)                  # promote 0
        victim = tlb.insert(100)       # evicts LRU = 1
        assert victim == 1
        assert tlb.lookup(0)
        assert not tlb.lookup(1)

    def test_invalidate(self):
        tlb = TLB(entries=64, ways=4)
        tlb.insert(3)
        assert tlb.invalidate(3)
        assert not tlb.lookup(3)
        assert not tlb.invalidate(3)   # second time: not cached

    def test_flush(self):
        tlb = TLB(entries=64, ways=4)
        for vpn in range(10):
            tlb.insert(vpn)
        assert tlb.flush() == 10
        assert tlb.occupancy == 0

    def test_reinsert_does_not_duplicate(self):
        tlb = TLB(entries=64, ways=4)
        tlb.insert(5)
        tlb.insert(5)
        assert tlb.occupancy == 1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            TLB(entries=10, ways=3)

    def test_counters(self):
        tlb = TLB(entries=64, ways=4)
        tlb.lookup(1)
        tlb.insert(1)
        tlb.lookup(1)
        assert tlb.counters["misses"] == 1
        assert tlb.counters["hits"] == 1
        assert tlb.counters["fills"] == 1


class TestShootdown:
    def test_scales_with_cores(self):
        small = ShootdownModel(num_cores=2)
        big = ShootdownModel(num_cores=16)
        assert big.shootdown_ns(1) > small.shootdown_ns(1)

    def test_batching_cheaper_than_individual(self):
        model = ShootdownModel(num_cores=8)
        batched = model.shootdown_ns(16)
        individual = sum(model.shootdown_ns(1) for _ in range(16))
        assert batched < individual

    def test_zero_pages_free(self):
        assert ShootdownModel().shootdown_ns(0) == 0.0

    def test_invalid_cores_rejected(self):
        with pytest.raises(ConfigError):
            ShootdownModel(num_cores=0)
