"""Tests pinning the Figure 11 eviction-strategy comparison."""

import pytest

import repro.common.units as u
from repro.analysis import paper
from repro.baselines.eviction_strategies import (
    STRATEGIES,
    ideal_4k_nocopy,
    ideal_cl_nocopy,
    kona_cl_log,
    kona_vm_4k,
    scatter_gather,
)
from repro.common.errors import ConfigError

PAGES = 2048


def rel(strategy_result, n, pattern="contiguous"):
    return strategy_result.goodput_relative_to(kona_vm_4k(PAGES, n, pattern))


class TestContiguous:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_cl_log_4_to_5x_for_few_lines(self, n):
        # Paper 6.4: "4-5X higher goodput ... for 1-4 contiguous".
        ratio = rel(kona_cl_log(PAGES, n), n)
        assert paper.within(ratio, paper.FIG11A_CONTIG_1_4)

    def test_monotonically_decreasing_advantage(self):
        ratios = [rel(kona_cl_log(PAGES, n), n) for n in (1, 2, 4, 8, 16, 32)]
        assert ratios == sorted(ratios, reverse=True)

    def test_parity_when_fully_dirty(self):
        ratio = rel(kona_cl_log(PAGES, 64), 64)
        assert paper.within(ratio, paper.FIG11A_FULL_PAGE_PAR)

    def test_kona_never_loses_contiguous(self):
        # "If dirty cache-lines are contiguous, Kona is always better
        # than Kona-VM, or on par when the whole page is dirty."
        for n in (1, 2, 4, 8, 12, 16, 32, 64):
            assert rel(kona_cl_log(PAGES, n), n) >= 0.9


class TestAlternate:
    @pytest.mark.parametrize("n", [2, 4])
    def test_2_to_3x_for_random_lines(self, n):
        ratio = rel(kona_cl_log(PAGES, n, "alternate"), n, "alternate")
        assert paper.within(ratio, paper.FIG11B_ALT_2_4)

    def test_loses_only_beyond_16_discontiguous(self):
        at_16 = rel(kona_cl_log(PAGES, 16, "alternate"), 16, "alternate")
        at_32 = rel(kona_cl_log(PAGES, 32, "alternate"), 32, "alternate")
        assert at_16 >= 0.85      # still roughly on par at 16
        assert at_32 < 1.0        # loses past 16

    def test_alternate_worse_than_contiguous(self):
        for n in (2, 4, 8):
            assert (rel(kona_cl_log(PAGES, n, "alternate"), n, "alternate")
                    < rel(kona_cl_log(PAGES, n), n))

    def test_more_than_32_alternate_rejected(self):
        with pytest.raises(ConfigError):
            kona_cl_log(PAGES, 33, "alternate")


class TestIdealizedBaselines:
    def test_ideal_4k_constant_advantage(self):
        # "4KB writes no-copy always achieves ~1.5X higher goodput".
        ratios = [rel(ideal_4k_nocopy(PAGES, n), n) for n in (1, 8, 64)]
        for ratio in ratios:
            assert paper.within(ratio, paper.FIG11_IDEAL_4K)
        assert max(ratios) - min(ratios) < 0.01

    def test_ideal_cl_great_for_few_contiguous(self):
        assert rel(ideal_cl_nocopy(PAGES, 1), 1) > rel(kona_cl_log(PAGES, 1), 1)

    def test_ideal_cl_bad_for_discontiguous(self):
        # "do not work well when dirty cache-lines are discontiguous".
        assert rel(ideal_cl_nocopy(PAGES, 16, "alternate"), 16,
                   "alternate") < 1.0


class TestScatterGather:
    def test_consistently_worse_than_cl_log(self):
        # Section 6.4: scatter-gather "was consistently worse than Kona".
        for pattern, ns in (("contiguous", (1, 4, 16, 32)),
                            ("alternate", (1, 4, 16, 32))):
            for n in ns:
                sg = rel(scatter_gather(PAGES, n, pattern), n, pattern)
                kona = rel(kona_cl_log(PAGES, n, pattern), n, pattern)
                assert sg < kona


class TestBreakdown:
    def test_fig11c_shares(self):
        result = kona_cl_log(PAGES, 8)
        fractions = result.account.fractions()
        for bucket, band in paper.FIG11C_BANDS.items():
            assert paper.within(fractions[bucket], band), (bucket, fractions)

    def test_copy_dominates_at_typical_densities(self):
        # Figure 11c: copy is the dominant slice at the densities real
        # applications exhibit (1-8 dirty lines per page, section 2.2).
        for n in (1, 8):
            fractions = kona_cl_log(PAGES, n).account.fractions()
            assert fractions["copy"] == max(fractions.values())


class TestInvariants:
    def test_goodput_positive_everywhere(self):
        for name, strategy in STRATEGIES.items():
            result = strategy(PAGES, 4)
            assert result.goodput_bytes_per_s() > 0, name

    def test_dirty_bytes_identical_across_strategies(self):
        results = [s(PAGES, 4) for s in STRATEGIES.values()]
        assert len({r.dirty_bytes for r in results}) == 1

    def test_wire_bytes_at_least_dirty_bytes(self):
        for name, strategy in STRATEGIES.items():
            result = strategy(PAGES, 4)
            assert result.wire_bytes >= result.dirty_bytes, name

    def test_invalid_line_counts_rejected(self):
        with pytest.raises(ConfigError):
            kona_cl_log(PAGES, 0)
        with pytest.raises(ConfigError):
            kona_cl_log(PAGES, 65)
