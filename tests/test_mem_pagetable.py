"""Tests for the page-table model."""

import pytest

import repro.common.units as u
from repro.common.errors import ProtectionError, TranslationError
from repro.mem.pagetable import (
    PageTable,
    Protection,
    raise_for_fault,
)


class TestMapping:
    def test_map_translate(self):
        pt = PageTable()
        pt.map(vpn=5, pfn=9)
        paddr, fault = pt.translate(5 * 4096 + 123, is_write=False)
        assert fault is None
        assert paddr == 9 * 4096 + 123

    def test_unmapped_faults(self):
        pt = PageTable()
        _, fault = pt.translate(0, is_write=False)
        assert fault is not None and fault.missing

    def test_not_present_faults(self):
        pt = PageTable()
        pt.map(0, 0, present=False)
        _, fault = pt.translate(100, is_write=True)
        assert fault is not None and fault.missing

    def test_unmap(self):
        pt = PageTable()
        pt.map(1, 1)
        pt.unmap(1)
        _, fault = pt.translate(4096, is_write=False)
        assert fault is not None

    def test_unmap_missing_raises(self):
        with pytest.raises(TranslationError):
            PageTable().unmap(3)

    def test_huge_page_size(self):
        pt = PageTable(page_size=u.PAGE_2M)
        pt.map(0, 0)
        paddr, fault = pt.translate(u.PAGE_2M - 1, is_write=False)
        assert fault is None
        assert paddr == u.PAGE_2M - 1


class TestProtection:
    def test_write_protect_faults_on_write_only(self):
        pt = PageTable()
        pt.map(0, 0, protection=Protection.READ)
        _, read_fault = pt.translate(0, is_write=False)
        assert read_fault is None
        _, write_fault = pt.translate(0, is_write=True)
        assert write_fault is not None
        assert write_fault.protection and not write_fault.missing

    def test_protect_toggle(self):
        pt = PageTable()
        pt.map(0, 0)
        pt.protect(0, Protection.READ)
        _, fault = pt.translate(0, is_write=True)
        assert fault is not None
        pt.protect(0, Protection.READ_WRITE)
        _, fault = pt.translate(0, is_write=True)
        assert fault is None

    def test_dirty_and_accessed_bits(self):
        pt = PageTable()
        pt.map(0, 0)
        pt.translate(0, is_write=True)
        entry = pt.entry(0)
        assert entry.dirty and entry.accessed
        pt.clear_dirty(0)
        assert not pt.entry(0).dirty

    def test_dirty_vpns(self):
        pt = PageTable()
        pt.map(0, 0)
        pt.map(1, 1)
        pt.translate(4096, is_write=True)
        assert list(pt.dirty_vpns()) == [1]


class TestPresence:
    def test_mark_not_present_then_present(self):
        pt = PageTable()
        pt.map(0, 0)
        pt.mark_not_present(0)
        _, fault = pt.translate(0, is_write=False)
        assert fault is not None and fault.missing
        pt.mark_present(0, pfn=2)
        paddr, fault = pt.translate(0, is_write=False)
        assert fault is None and paddr == 2 * 4096

    def test_mark_present_installs_if_missing(self):
        pt = PageTable()
        pt.mark_present(7, pfn=7)
        assert pt.entry(7) is not None


class TestFaultRaising:
    def test_missing_raises_translation_error(self):
        pt = PageTable()
        _, fault = pt.translate(0, is_write=False)
        with pytest.raises(TranslationError):
            raise_for_fault(fault)

    def test_protection_raises_protection_error(self):
        pt = PageTable()
        pt.map(0, 0, protection=Protection.READ)
        _, fault = pt.translate(0, is_write=True)
        with pytest.raises(ProtectionError):
            raise_for_fault(fault)

    def test_counters_track_operations(self):
        pt = PageTable()
        pt.map(0, 0)
        pt.translate(0, is_write=False)
        pt.translate(99 * 4096, is_write=False)
        assert pt.counters["translations"] == 1
        assert pt.counters["faults_missing"] == 1
