"""End-to-end integration tests across the full stack.

Each test exercises a complete paper scenario: application access
streams through the coherent runtime, eviction to memory nodes, the
Kona-vs-Kona-VM comparison, and failure handling under replication.
"""

import numpy as np
import pytest

import repro.common.units as u
from repro.analysis import paper
from repro.baselines import kona_vm
from repro.kona import KonaConfig, KonaRuntime
from repro.workloads import WORKLOADS, one_line_per_page


def make_runtime(**kwargs):
    defaults = dict(fmem_capacity=8 * u.MB, vfmem_capacity=64 * u.MB,
                    slab_bytes=16 * u.MB)
    defaults.update(kwargs)
    return KonaRuntime(KonaConfig(**defaults), app_ns_per_access=70.0)


class TestKonaVsKonaVM:
    """The Figure 7 scenario at reduced scale."""

    REGION = 8 * u.MB

    def _run_both(self):
        rt = make_runtime(fmem_capacity=4 * u.MB)
        region = rt.mmap(self.REGION)
        addrs, writes = one_line_per_page(self.REGION, base=region.start)[0]
        kona_report = rt.run_trace(addrs, writes)

        vm = kona_vm(self.REGION // 2, app_ns_per_access=70.0)
        vm_addrs, vm_writes = one_line_per_page(self.REGION)[0]
        vm_report = vm.run(vm_addrs, vm_writes)
        return kona_report, vm_report, rt

    def test_kona_substantially_faster(self):
        kona_report, vm_report, _ = self._run_both()
        speedup = vm_report.elapsed_ns / kona_report.elapsed_ns
        assert speedup > 3.0

    def test_kona_moves_lines_vm_moves_pages(self):
        kona_report, vm_report, rt = self._run_both()
        rt.flush()
        pages = self.REGION // u.PAGE_4K
        # Kona wrote back ~1 line per page (+ log headers).
        assert rt.eviction.stats.dirty_bytes == pages * u.CACHE_LINE
        # Kona-VM wrote back whole pages for the evicted half.
        assert vm_report.bytes_written_back >= (pages // 2) * u.PAGE_4K

    def test_no_faults_in_kona_many_in_vm(self):
        kona_report, vm_report, rt = self._run_both()
        assert rt.page_table.counters["faults_missing"] == 0
        assert vm_report.counters["pages_fetched"] > 0
        assert vm_report.account["fetch_fault"] > 0


class TestWorkloadThroughRuntime:
    def test_redis_rand_trace_executes_transparently(self):
        wl = WORKLOADS["redis-rand"]()
        trace = wl.generate(windows=2, seed=0)
        rt = make_runtime(vfmem_capacity=192 * u.MB, slab_bytes=64 * u.MB)
        region = rt.mmap(wl.memory_bytes)
        # Rebase workload addresses into the Kona-managed region and
        # drop them to line granularity.
        addrs = (trace.addrs[:4000] + np.uint64(region.start))
        writes = trace.writes[:4000].copy()
        report = rt.run_trace(addrs, writes)
        assert report.accesses == 4000
        assert rt.page_table.counters["faults_missing"] == 0
        rt.flush()
        # Dirty bytes at line granularity are far below page granularity.
        lines = rt.eviction.stats.dirty_bytes // u.CACHE_LINE
        dirty_pages = len({int(a) // u.PAGE_4K
                           for a, w in zip(addrs.tolist(), writes.tolist())
                           if w})
        assert lines * u.CACHE_LINE < dirty_pages * u.PAGE_4K


class TestReplicationFailover:
    def test_end_to_end_failover_and_recovery(self):
        rt = make_runtime(replication_factor=2)
        region = rt.mmap(8 * u.MB)
        # Populate and push dirty data out to both replicas.
        for i in range(128):
            rt.write(region.start + i * u.PAGE_4K)
        rt.flush()
        wire_with_replicas = rt.eviction.stats.wire_bytes
        assert wire_with_replicas >= 2 * rt.eviction.stats.dirty_bytes

        # Kill the primary; reads keep working through the replica.
        primary = rt.translation.resolve(region.start).node
        rt.controller.node(primary).fail()
        cost = rt.read(region.start + 200 * u.PAGE_4K)
        assert cost > 0
        assert rt.failures.counters["replica_failovers"] >= 1

        # Recovery: the primary comes back and serves again.
        rt.controller.node(primary).recover()
        rt.read(region.start + 300 * u.PAGE_4K)


class TestMemoryNodeScatter:
    def test_log_records_scattered_at_destination(self):
        rt = make_runtime()
        region = rt.mmap(8 * u.MB)
        for i in range(64):
            rt.write(region.start + i * u.PAGE_4K)
        rt.flush()
        total_scattered = sum(
            rt.controller.node(n).counters["records_scattered"]
            for n in rt.controller.nodes)
        assert total_scattered == 64


class TestHeadlineClaims:
    def test_amplification_reduction_band(self):
        # Headline: 2-10X dirty-amplification reduction (Redis-Rand,
        # per-window, Figure 9) — checked via KTracker elsewhere; here
        # check the runtime's own page-vs-line ratio on a mixed write
        # pattern sits above 2X.
        rt = make_runtime()
        region = rt.mmap(8 * u.MB)
        rng = np.random.default_rng(0)
        pages = rng.choice(1024, size=200, replace=False)
        for page in pages.tolist():
            base = region.start + page * u.PAGE_4K
            for line in range(int(rng.integers(1, 9))):
                rt.write(base + line * u.CACHE_LINE)
        # The bitmap fills as dirty lines leave the CPU caches; push
        # them out so the tracker sees the complete write set.
        rt.cpu_cache.flush_tracked()
        ratio = rt.tracker.amplification_vs_page()
        assert ratio > 2.0
