"""Tests for KLib components: config, AllocLib, resource manager, poller."""

import pytest

import repro.common.units as u
from repro.common.errors import AllocationError, ConfigError
from repro.cluster.controller import RackController
from repro.cluster.memnode import MemoryNode
from repro.fpga.translation import RemoteTranslationMap
from repro.kona.alloclib import AllocLib
from repro.kona.config import KonaConfig
from repro.kona.poller import Poller
from repro.kona.resource_manager import ResourceManager
from repro.mem.address import AddressRange
from repro.mem.pagetable import PageTable
from repro.net.fabric import Fabric
from repro.net.rdma import QueuePair


class TestKonaConfig:
    def test_defaults_valid(self):
        KonaConfig()

    def test_vfmem_smaller_than_fmem_rejected(self):
        with pytest.raises(ConfigError):
            KonaConfig(fmem_capacity=2 * u.GB, vfmem_capacity=1 * u.GB)

    def test_watermark_order_enforced(self):
        with pytest.raises(ConfigError):
            KonaConfig(evict_low_watermark=0.95, evict_high_watermark=0.5)

    def test_vfmem_slab_alignment_enforced(self):
        with pytest.raises(ConfigError):
            KonaConfig(vfmem_capacity=100 * u.MB, slab_bytes=64 * u.MB)

    def test_replication_at_least_one(self):
        with pytest.raises(ConfigError):
            KonaConfig(replication_factor=0)


def make_rm(replicas=1, nodes=2):
    config = KonaConfig(fmem_capacity=4 * u.MB, vfmem_capacity=64 * u.MB,
                        slab_bytes=16 * u.MB, slab_batch=1,
                        replication_factor=replicas)
    fabric = Fabric()
    controller = RackController()
    for i in range(nodes):
        controller.register_node(
            MemoryNode(f"m{i}", 64 * u.MB, fabric, slab_bytes=16 * u.MB))
    vfmem = AddressRange(0, config.vfmem_capacity)
    translation = RemoteTranslationMap(0, config.slab_bytes)
    pt = PageTable()
    rm = ResourceManager(config, controller, translation, vfmem, pt)
    return rm, translation, pt, controller


class TestResourceManager:
    def test_ensure_binds_slabs(self):
        rm, translation, _, _ = make_rm()
        rm.ensure(20 * u.MB)
        assert rm.bound_bytes == 32 * u.MB     # two 16 MB slabs
        assert translation.bound_slots == 2

    def test_ensure_is_idempotent(self):
        rm, _, _, _ = make_rm()
        rm.ensure(10 * u.MB)
        bound = rm.bound_bytes
        rm.ensure(10 * u.MB)
        assert rm.bound_bytes == bound

    def test_pages_mapped_present(self):
        # Paper 4.4: pages are marked present at allocation time — no
        # page faults ever on the data path.
        rm, _, pt, _ = make_rm()
        rm.ensure(1)
        vpn = 0
        entry = pt.entry(vpn)
        assert entry is not None and entry.present

    def test_vfmem_exhaustion(self):
        rm, _, _, _ = make_rm()
        with pytest.raises(AllocationError):
            rm.ensure(100 * u.MB)   # only 64 MB of VFMem

    def test_replication_allocates_on_distinct_nodes(self):
        rm, translation, _, _ = make_rm(replicas=2)
        rm.ensure(1)
        locations = translation.resolve_replicas(0)
        assert len(locations) == 2
        assert locations[0].node != locations[1].node

    def test_release_all(self):
        rm, translation, _, controller = make_rm()
        rm.ensure(32 * u.MB)
        free_before = controller.free_slab_count()
        rm.release_all()
        assert controller.free_slab_count() > free_before
        assert translation.bound_slots == 0
        assert rm.bound_bytes == 0


class TestAllocLib:
    def _alloc(self):
        rm, _, _, _ = make_rm()
        return AllocLib(rm)

    def test_malloc_returns_line_aligned(self):
        lib = self._alloc()
        addr = lib.malloc(100)
        assert addr % u.CACHE_LINE == 0
        assert lib.size_of(addr) == 128    # rounded to line multiple

    def test_distinct_allocations_dont_overlap(self):
        lib = self._alloc()
        a = lib.malloc(64)
        b = lib.malloc(64)
        assert abs(a - b) >= 64

    def test_free_and_reuse(self):
        lib = self._alloc()
        a = lib.malloc(256)
        lib.free(a)
        b = lib.malloc(256)
        assert b == a                      # free list reuse
        assert lib.counters["free_list_hits"] == 1

    def test_double_free_rejected(self):
        lib = self._alloc()
        a = lib.malloc(64)
        lib.free(a)
        with pytest.raises(AllocationError):
            lib.free(a)

    def test_mmap_page_aligned(self):
        lib = self._alloc()
        region = lib.mmap(10_000)
        assert region.start % u.PAGE_4K == 0
        assert region.size == 12 * u.KB

    def test_allocation_triggers_slab_binding(self):
        lib = self._alloc()
        lib.mmap(20 * u.MB)
        assert lib.rm.bound_bytes >= 20 * u.MB

    def test_exhaustion(self):
        lib = self._alloc()
        with pytest.raises(AllocationError):
            lib.mmap(100 * u.MB)

    def test_live_bytes(self):
        lib = self._alloc()
        a = lib.malloc(128)
        lib.malloc(128)
        lib.free(a)
        assert lib.live_bytes == 128

    def test_owns(self):
        lib = self._alloc()
        a = lib.malloc(128)
        assert lib.owns(a + 100)
        assert not lib.owns(a + 128)

    def test_invalid_sizes_rejected(self):
        lib = self._alloc()
        with pytest.raises(ConfigError):
            lib.malloc(0)
        with pytest.raises(ConfigError):
            lib.mmap(-1)


class TestPoller:
    def test_drains_watched_queues(self):
        fabric = Fabric()
        fabric.add_node("a")
        fabric.add_node("b")
        qp = QueuePair(fabric, "a", "b")
        qp.register("a", 0, u.MB)
        qp.register("b", 0, u.MB)
        poller = Poller()
        poller.watch(qp.cq)
        qp.write(0, 0, 64, signaled=True)
        qp.write(64, 64, 64, signaled=True)
        drained = poller.drain()
        assert drained == 2
        assert poller.hidden_time_ns > 0
        assert poller.counters["completions"] == 2

    def test_poll_once_skips_empty_queues(self):
        poller = Poller()
        assert poller.poll_once() == []
        assert poller.hidden_time_ns == 0
