"""Tests for slab placement policies."""

import pytest

import repro.common.units as u
from repro.cluster import (
    FirstFitPlacement,
    LeastLoadedPlacement,
    MemoryNode,
    RackController,
    RoundRobinPlacement,
    imbalance,
    make_placement,
)
from repro.common.errors import AllocationError, ConfigError
from repro.net.fabric import Fabric


def rack(placement=None, sizes=(64, 64, 64)):
    fabric = Fabric()
    controller = RackController(placement=placement)
    for i, size in enumerate(sizes):
        controller.register_node(
            MemoryNode(f"m{i}", size * u.MB, fabric, slab_bytes=16 * u.MB))
    return controller


class TestRoundRobin:
    def test_spreads_evenly(self):
        controller = rack(RoundRobinPlacement())
        slabs = controller.allocate_slabs(6)
        per_node = {f"m{i}": 0 for i in range(3)}
        for slab in slabs:
            per_node[slab.node] += 1
        assert set(per_node.values()) == {2}

    def test_imbalance_low(self):
        controller = rack(RoundRobinPlacement())
        controller.allocate_slabs(9)
        nodes = [controller.node(n) for n in controller.nodes]
        assert imbalance(nodes) <= 0.26


class TestLeastLoaded:
    def test_fills_biggest_pool_first(self):
        controller = rack(LeastLoadedPlacement(), sizes=(128, 64, 64))
        slabs = controller.allocate_slabs(4)
        # m0 has 8 slabs vs 4 each: the first allocations go there.
        assert all(s.node == "m0" for s in slabs)

    def test_equalizes_mixed_rack(self):
        controller = rack(LeastLoadedPlacement(), sizes=(128, 64, 64))
        controller.allocate_slabs(10)
        nodes = [controller.node(n) for n in controller.nodes]
        assert imbalance(nodes) <= 0.3


class TestFirstFit:
    def test_packs_in_name_order(self):
        controller = rack(FirstFitPlacement())
        slabs = controller.allocate_slabs(5)
        assert [s.node for s in slabs] == ["m0", "m0", "m0", "m0", "m1"]

    def test_drains_cleanly(self):
        # Packing leaves later nodes empty: they can be decommissioned.
        controller = rack(FirstFitPlacement())
        controller.allocate_slabs(4)
        assert controller.node("m2").pool.allocated_slabs == 0
        controller.remove_node("m2")


class TestFactoryAndEdges:
    def test_factory(self):
        assert isinstance(make_placement("least-loaded"),
                          LeastLoadedPlacement)
        with pytest.raises(ConfigError):
            make_placement("astrological")

    def test_policies_skip_failed_nodes(self):
        controller = rack(LeastLoadedPlacement())
        controller.node("m0").fail()
        slabs = controller.allocate_slabs(2)
        assert all(s.node != "m0" for s in slabs)

    def test_exhaustion_still_raises(self):
        controller = rack(FirstFitPlacement(), sizes=(16, 16, 16))
        with pytest.raises(AllocationError):
            controller.allocate_slabs(4)   # only 3 exist

    def test_imbalance_requires_nodes(self):
        with pytest.raises(ConfigError):
            imbalance([])
