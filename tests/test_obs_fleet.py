"""Fleet observability plane: bit-exact federation across components.

The tentpole contract: a :class:`FleetRecorder` built from component
snapshots of sharded / streamed runs reproduces the monolithic
telemetry *bit-exactly* — counters, histogram quantiles, tsdb
timelines and fault-log aggregates — and the fleet artifact itself is
a stable, deterministic JSON document.  Satellites ride along: Chrome
pid/tid stability across exports, the streaming JSONL exporter's
bounded memory, and multi-sampler cadence on one shared sim clock.
"""

import json
import tracemalloc
from dataclasses import replace

import numpy as np
import pytest

import repro.common.units as u
from repro.common import units
from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.kona import KonaConfig, KonaRuntime
from repro.obs import (
    FlightRecorder,
    component_pid,
    iter_jsonl,
    validate_chrome_trace,
)
from repro.obs.fleet import ComponentSnapshot, FleetRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import Sampler
from repro.workloads.trace import generate_hot_mix_stream, open_columnar


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("fleet") / "hot.trace")
    generate_hot_mix_stream(path, 40_000, hot_lines=4096,
                            region_bytes=16 * units.MB, seed=29,
                            chunk_size=1 << 13)
    return path


def make_runtime(component="runtime:shard0", tenant=None):
    # Tracing on: the stall/evict histograms are fed on the access
    # path only while tracing, and the trace events ride the snapshot.
    recorder = FlightRecorder(tracing=True, sample_interval_ns=50_000.0,
                              component=component, tenant=tenant)
    cfg = KonaConfig(fmem_capacity=4 * u.MB, vfmem_capacity=32 * u.MB,
                     slab_bytes=1 * u.MB)
    return KonaRuntime(cfg, app_ns_per_access=50.0, recorder=recorder)


def capture_fleet(rt, tenant=None):
    fleet = FleetRecorder(name="test")
    for member in rt.fleet_members(tenant=tenant):
        fleet.add(member)
    return fleet


def artifact_bytes(fleet):
    return json.dumps(fleet.to_json(), sort_keys=True)


class TestStreamedEqualsMonolithic:
    """A chunked streamed replay federates to the monolithic fleet."""

    @pytest.fixture(scope="class")
    def fleets(self, trace_dir):
        columnar = open_columnar(trace_dir)
        addrs = columnar.addrs[:].astype(np.int64)
        writes = np.asarray(columnar.writes)

        mono_rt = make_runtime(tenant="t0")
        region = mono_rt.mmap(columnar.memory_bytes)
        mono_rt.attach_causal_capture()
        mono_rt.run_trace(addrs + np.int64(region.start), writes)

        stream_rt = make_runtime(tenant="t0")
        region2 = stream_rt.mmap(columnar.memory_bytes)
        stream_rt.attach_causal_capture()
        bounds = [0, 4 * 256, 31 * 256, 120 * 256, addrs.size]
        chunks = ((addrs[a:b], writes[a:b])
                  for a, b in zip(bounds, bounds[1:]))
        stream_rt.run_trace_stream(chunks, base=region2.start)

        return (capture_fleet(mono_rt, tenant="t0"),
                capture_fleet(stream_rt, tenant="t0"))

    def test_counter_totals_bit_equal(self, fleets):
        mono, streamed = fleets
        assert mono.totals() == streamed.totals()
        assert mono.totals()["fetch.cache_misses"] > 0

    def test_histogram_states_bit_equal(self, fleets):
        mono, streamed = fleets
        mono_h = {k: v.state() for k, v in mono.histogram_totals().items()}
        stream_h = {k: v.state()
                    for k, v in streamed.histogram_totals().items()}
        assert mono_h == stream_h
        assert mono_h["kona_access_stall_ns"]["count"] > 0
        for q in (0.5, 0.9, 0.99):
            assert (mono.histogram_totals()["kona_access_stall_ns"]
                    .quantile(q)
                    == streamed.histogram_totals()["kona_access_stall_ns"]
                    .quantile(q))

    def test_tsdb_timelines_bit_equal(self, fleets):
        mono, streamed = fleets
        assert mono.tsdb().as_dict() == streamed.tsdb().as_dict()
        assert mono.tsdb().as_dict(), "sampler produced no series"

    def test_fault_log_aggregates_bit_equal(self, fleets):
        mono, streamed = fleets
        assert mono.fault_log() is not None
        assert (mono.fault_log().aggregate()
                == streamed.fault_log().aggregate())

    def test_whole_artifacts_bit_equal(self, fleets):
        mono, streamed = fleets
        assert artifact_bytes(mono) == artifact_bytes(streamed)


class TestShardedFleet:
    """Page-modulo sharded fleets: exact sums, process-invariance."""

    @pytest.fixture(scope="class")
    def sharded(self, trace_dir):
        from repro.experiments.shard import make_shards, run_sharded
        specs = make_shards(trace_dir, 2, chunk_size=1 << 13,
                            fmem_mb=4, vfmem_mb=32, capture=True,
                            fleet=True, tenant="t0")
        return run_sharded(specs, processes=1)

    def test_fleet_counter_totals_match_merged_counters(self, sharded):
        fleet = sharded.fleet()
        totals = fleet.totals()
        assert totals["fetch.cache_hits"] == sharded.totals["cache_hits"]
        assert totals["fetch.cache_misses"] \
            == sharded.totals["cache_misses"]
        assert totals["fetch.remote_fetches"] \
            == sharded.totals["remote_fetches"]
        assert totals["eviction.pages_evicted"] \
            == sharded.totals["pages_evicted"]

    def test_fleet_fault_log_equals_merged_shard_logs(self, sharded):
        fleet_agg = sharded.fleet().fault_log().aggregate()
        assert fleet_agg == sharded.fault_log().aggregate()
        assert fleet_agg["n"] == sharded.totals["cache_misses"]

    def test_components_are_shard_qualified_and_unique(self, sharded):
        names = sharded.fleet().components()
        assert len(names) == len(set(names))
        assert "runtime:shard0" in names and "runtime:shard1" in names
        assert any(n.startswith("memnode:shard1.") for n in names)

    def test_parallel_artifact_identical_to_serial(self, trace_dir,
                                                   sharded):
        from repro.experiments.shard import make_shards, run_sharded
        specs = make_shards(trace_dir, 2, chunk_size=1 << 13,
                            fmem_mb=4, vfmem_mb=32, capture=True,
                            fleet=True, tenant="t0")
        parallel = run_sharded(specs, processes=2)
        assert artifact_bytes(parallel.fleet()) \
            == artifact_bytes(sharded.fleet())

    def test_fleet_capture_leaves_simulation_untouched(self, trace_dir,
                                                       sharded):
        from repro.experiments.shard import make_shards, run_sharded
        plain = run_sharded(make_shards(trace_dir, 2, chunk_size=1 << 13,
                                        fmem_mb=4, vfmem_mb=32),
                            processes=1)
        assert plain.totals.as_dict() == sharded.totals.as_dict()
        assert plain.elapsed_ns == sharded.elapsed_ns

    def test_tenant_attribution_covers_all_stall(self, sharded):
        rows = sharded.fleet().tenant_attribution()
        assert [r["tenant"] for r in rows] == ["t0"]
        assert rows[0]["faults"] == sharded.totals["cache_misses"]
        assert rows[0]["stall_share"] == 1.0


class TestFleetArtifact:
    @pytest.fixture(scope="class")
    def fleet(self, trace_dir):
        columnar = open_columnar(trace_dir)
        rt = make_runtime(tenant="t0")
        region = rt.mmap(columnar.memory_bytes)
        rt.attach_causal_capture()
        rt.run_trace(columnar.addrs[:].astype(np.int64)
                     + np.int64(region.start),
                     np.asarray(columnar.writes))
        return capture_fleet(rt, tenant="t0")

    def test_save_load_round_trips_bit_exactly(self, fleet, tmp_path):
        path = fleet.save(str(tmp_path / "fleet.json"))
        loaded = FleetRecorder.load(path)
        assert artifact_bytes(loaded) == artifact_bytes(fleet)
        assert loaded.totals() == fleet.totals()
        assert loaded.fault_log().aggregate() \
            == fleet.fault_log().aggregate()

    def test_duplicate_component_rejected(self, fleet):
        with pytest.raises(ConfigError):
            fleet.add(ComponentSnapshot(component="runtime:shard0"))

    def test_merged_registry_carries_identity_labels(self, fleet):
        samples = fleet.registry().flat_samples()
        key = ("fetch.cache_misses"
               "{component=runtime:shard0,tenant=t0}")
        assert key in samples
        assert samples[key] == fleet.totals()["fetch.cache_misses"]

    def test_tenant_filter(self, fleet):
        assert fleet.totals(tenant="t0") == fleet.totals()
        assert fleet.totals(tenant="nobody") == {}

    def test_per_component_tsdb_prefixes(self, fleet):
        series = fleet.tsdb().as_dict()
        assert series
        assert all(name.startswith("runtime:shard0/") for name in series)


class TestChromeExportStability:
    """Satellite: pids/tids are pure functions of component identity."""

    def test_component_pid_pinned_values(self):
        # FNV-1a/32 over the UTF-8 label, folded to a positive int.
        # Pinned so the pid assignment can never silently change —
        # saved traces must stay comparable across versions.
        assert component_pid("runtime:shard0") == 859002727
        assert component_pid("fabric") == 1743038524
        assert component_pid("memnode:mem0") == 430470707
        assert component_pid("fleet") == 1663056687

    def test_distinct_components_distinct_pids(self):
        labels = ["runtime:shard0", "runtime:shard1", "fabric",
                  "memnode:mem0", "memnode:mem1", "memnode:mem2"]
        pids = [component_pid(label) for label in labels]
        assert len(set(pids)) == len(pids)
        assert all(pid > 0 for pid in pids)

    def test_two_exports_byte_identical(self, trace_dir):
        columnar = open_columnar(trace_dir)
        rt = make_runtime(tenant="t0")
        region = rt.mmap(columnar.memory_bytes)
        rt.attach_causal_capture()
        rt.run_trace(columnar.addrs[:20_000].astype(np.int64)
                     + np.int64(region.start),
                     np.asarray(columnar.writes[:20_000]))
        fleet = capture_fleet(rt, tenant="t0")
        first = json.dumps(fleet.chrome_trace(), sort_keys=True)
        second = json.dumps(fleet.chrome_trace(), sort_keys=True)
        assert first == second

    def test_fleet_trace_schema_valid_with_per_component_pids(
            self, trace_dir):
        columnar = open_columnar(trace_dir)
        rt = make_runtime(tenant="t0")
        region = rt.mmap(columnar.memory_bytes)
        rt.attach_causal_capture()
        rt.run_trace(columnar.addrs[:20_000].astype(np.int64)
                     + np.int64(region.start),
                     np.asarray(columnar.writes[:20_000]))
        fleet = capture_fleet(rt, tenant="t0")
        payload = fleet.chrome_trace()
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        by_pid = {e["pid"] for e in events}
        for member in fleet.members:
            assert member.pid in by_pid
        flows = [e for e in events if e["ph"] in ("s", "t", "f")]
        assert flows, "no correlation flow arrows in the fleet trace"
        assert all("id" in e for e in flows)


class TestBoundedJsonlExport:
    """Satellite: the JSONL exporter streams, never materializes."""

    def _busy_recorder(self, events=30_000):
        recorder = FlightRecorder(tracing=True, max_events=events + 10)
        for i in range(events):
            recorder.clock.advance(10.0)
            recorder.tracer.instant(f"ev.{i % 7}", cat="test", i=i)
        return recorder

    def test_iter_jsonl_matches_materialized_lines(self):
        recorder = self._busy_recorder(events=500)
        from repro.obs import jsonl_lines
        assert list(iter_jsonl(recorder)) == jsonl_lines(recorder)

    def test_write_jsonl_memory_stays_bounded(self, tmp_path):
        recorder = self._busy_recorder()
        total_bytes = sum(len(line) + 1 for line in iter_jsonl(recorder))
        path = str(tmp_path / "events.jsonl")
        tracemalloc.start()
        recorder.write_jsonl(path)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Streaming keeps peak allocation far below the payload size;
        # a materialize-then-write implementation would hold all of it.
        assert peak < total_bytes / 2, (
            f"write_jsonl peaked at {peak} bytes for a {total_bytes}-"
            f"byte payload — exporter is materializing the log")
        with open(path) as fh:
            assert sum(1 for _ in fh) == len(list(iter_jsonl(recorder)))


class TestMultiSamplerCadence:
    """Satellite: N samplers with different periods share one clock."""

    PERIODS = (700.0, 1100.0, 1300.0)

    def _run(self, tick_ns=97.0, until_ns=300_000.0):
        clock = SimClock()
        reg = MetricsRegistry(clock=clock)
        reg.gauge("g", fn=lambda: clock.now)
        samplers = [Sampler(reg, interval_ns=p, clock=clock)
                    for p in self.PERIODS]
        while clock.now < until_ns:
            clock.advance(tick_ns)
            for s in samplers:
                s.maybe_sample()
        return clock, samplers

    def test_every_sampler_fires_once_per_grid_point(self):
        clock, samplers = self._run()
        for sampler, period in zip(samplers, self.PERIODS):
            # Ticks (97 ns) are denser than every period, so each grid
            # point fires exactly once: 1 (the t~0 arm) + one per
            # whole period elapsed.
            assert len(sampler.samples) == 1 + int(clock.now // period)

    def test_timestamps_anchor_to_the_grid_without_drift(self):
        _, samplers = self._run()
        for sampler, period in zip(samplers, self.PERIODS):
            stamps = [t for t, _ in sampler.samples]
            for i, ts in enumerate(stamps[1:], start=1):
                grid = i * period
                assert grid <= ts < grid + 97.0, (
                    f"sample {i} of period {period} fired at {ts}, "
                    f"grid point {grid} — cadence drifted")

    def test_late_burst_never_double_fires(self):
        clock = SimClock()
        reg = MetricsRegistry(clock=clock)
        reg.gauge("g", fn=lambda: 1.0)
        sampler = Sampler(reg, interval_ns=1000.0, clock=clock)
        sampler.maybe_sample()               # arms the grid at t=0
        clock.advance(10_500.0)              # sleeps through 10 points
        assert sampler.maybe_sample() is True
        assert sampler.maybe_sample() is False   # same tick: no refire
        assert sampler._next_due % 1000.0 == 0.0
        assert sampler._next_due > clock.now
        assert len(sampler.samples) == 2

    def test_samplers_share_rows_from_one_registry(self):
        _, samplers = self._run(until_ns=10_000.0)
        for sampler in samplers:
            for ts, row in sampler.samples:
                assert row["g"] == ts
