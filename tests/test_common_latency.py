"""Tests for the latency cost model and its paper calibration."""

import pytest

import repro.common.units as u
from repro.common.errors import ConfigError
from repro.common.latency import (
    DEFAULT_LATENCY,
    LatencyModel,
    validate_against_paper,
)


class TestCalibration:
    def test_rdma_4k_is_about_3us(self):
        # Paper section 2.1: "a 4KB RDMA read operation is generally as
        # fast as 3us".
        cost = DEFAULT_LATENCY.rdma_transfer_ns(u.PAGE_4K, linked=True,
                                                signaled=False)
        assert 2_500 <= cost <= 3_600

    def test_infiniswap_is_40us(self):
        assert DEFAULT_LATENCY.infiniswap_remote_fetch_ns == 40_000

    def test_legoos_is_10us(self):
        assert DEFAULT_LATENCY.legoos_remote_fetch_ns == 10_000

    def test_numa_factor_exceeds_socket_penalty(self):
        # Section 4.3: FPGA directory logic is slower than the ~1.5X
        # NUMA socket penalty.
        assert DEFAULT_LATENCY.fmem_ns / DEFAULT_LATENCY.cmem_ns > 1.5

    def test_fetch_latency_ordering(self):
        # Kona < LegoOS < Infiniswap on the remote-fetch path.
        lat = DEFAULT_LATENCY
        assert (lat.kona_remote_fetch_ns < lat.legoos_remote_fetch_ns
                < lat.infiniswap_remote_fetch_ns)

    def test_validate_against_paper_shape(self):
        checks = validate_against_paper()
        assert set(checks) == {"rdma_4k_us", "infiniswap_fetch_us",
                               "legoos_fetch_us", "numa_factor"}


class TestDerivedCosts:
    def test_linked_cheaper_than_doorbell(self):
        lat = DEFAULT_LATENCY
        linked = lat.rdma_transfer_ns(4096, linked=True, signaled=False)
        alone = lat.rdma_transfer_ns(4096, linked=False, signaled=False)
        assert linked < alone

    def test_unsignaled_cheaper_than_signaled(self):
        lat = DEFAULT_LATENCY
        assert (lat.rdma_transfer_ns(64, signaled=False)
                < lat.rdma_transfer_ns(64, signaled=True))

    def test_pipelined_much_cheaper_than_latency(self):
        # A pipelined 4 KB write costs its slot, not the round trip.
        lat = DEFAULT_LATENCY
        assert (lat.rdma_pipelined_ns(u.PAGE_4K)
                < lat.rdma_transfer_ns(u.PAGE_4K) / 1.5)

    def test_memcpy_scales_with_size(self):
        lat = DEFAULT_LATENCY
        assert lat.memcpy_ns(8192) > lat.memcpy_ns(64)

    def test_hierarchy_levels_ordered(self):
        levels = DEFAULT_LATENCY.hierarchy_levels()
        names = [lvl.name for lvl in levels]
        assert names == ["L1", "L2", "L3"]
        times = [lvl.hit_ns for lvl in levels]
        assert times == sorted(times)


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            LatencyModel(l1_hit_ns=-1.0)

    def test_fmem_faster_than_cmem_rejected(self):
        with pytest.raises(ConfigError):
            LatencyModel(fmem_ns=10.0, cmem_ns=100.0)

    def test_with_overrides(self):
        custom = DEFAULT_LATENCY.with_overrides(cmem_ns=100.0)
        assert custom.cmem_ns == 100.0
        assert custom.l1_hit_ns == DEFAULT_LATENCY.l1_hit_ns
        # The original is untouched (frozen dataclass semantics).
        assert DEFAULT_LATENCY.cmem_ns != 100.0
