"""Tests for the set-associative cache model."""

import pytest

import repro.common.units as u
from repro.common.errors import ConfigError
from repro.cache.setassoc import SetAssociativeCache


def make_cache(capacity=8 * u.KB, block=64, ways=2, policy="lru"):
    return SetAssociativeCache("T", capacity, block, ways, policy)


class TestGeometry:
    def test_basic_geometry(self):
        c = make_cache()
        assert c.num_sets == 64

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache("T", 3 * 64 * 2, 64, 2)

    def test_indivisible_capacity_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache("T", 1000, 64, 2)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache("T", 8192, 100, 2)


class TestAccess:
    def test_miss_then_hit(self):
        c = make_cache()
        hit, _ = c.access(0, False)
        assert not hit
        hit, _ = c.access(63, False)   # same block
        assert hit

    def test_write_allocate_and_dirty(self):
        c = make_cache()
        c.access(0, True)
        assert c.is_dirty(0)

    def test_read_does_not_dirty(self):
        c = make_cache()
        c.access(0, False)
        assert not c.is_dirty(0)

    def test_write_hit_dirties_clean_block(self):
        c = make_cache()
        c.access(0, False)
        c.access(32, True)
        assert c.is_dirty(0)

    def test_lru_victim_selection(self):
        c = make_cache(capacity=2 * 64, block=64, ways=2)   # one set
        c.access(0, False)        # block 0
        c.access(64, False)       # block 1
        c.access(0, False)        # promote block 0
        _, eviction = c.access(128, False)
        assert eviction is not None
        assert eviction.block_addr == 64

    def test_dirty_eviction_flagged(self):
        c = make_cache(capacity=2 * 64, block=64, ways=2)
        c.access(0, True)
        c.access(64, False)
        _, eviction = c.access(128, False)
        assert eviction is not None and eviction.dirty
        assert c.stats.dirty_writebacks == 1

    def test_clean_eviction_not_flagged(self):
        c = make_cache(capacity=2 * 64, block=64, ways=2)
        c.access(0, False)
        c.access(64, False)
        _, eviction = c.access(128, False)
        assert eviction is not None and not eviction.dirty


class TestMaintenance:
    def test_probe_does_not_disturb(self):
        c = make_cache()
        c.access(0, False)
        hits_before = c.stats.hits
        assert c.probe(0)
        assert not c.probe(4096 * 10)
        assert c.stats.hits == hits_before

    def test_invalidate(self):
        c = make_cache()
        c.access(0, True)
        ev = c.invalidate(0)
        assert ev is not None and ev.dirty
        assert not c.probe(0)
        assert c.invalidate(0) is None

    def test_clean(self):
        c = make_cache()
        c.access(0, True)
        assert c.clean(0)
        assert not c.is_dirty(0)
        assert not c.clean(0)

    def test_occupancy_and_resident_blocks(self):
        c = make_cache()
        c.access(0, False)
        c.access(64, False)
        assert c.occupancy == 2
        assert c.resident_blocks() == [0, 64]


class TestStats:
    def test_miss_ratio(self):
        c = make_cache()
        c.access(0, False)
        c.access(0, False)
        c.access(0, False)
        c.access(4096, False)
        assert c.stats.miss_ratio == pytest.approx(0.5)

    def test_empty_miss_ratio(self):
        assert make_cache().stats.miss_ratio == 0.0


class TestPolicies:
    def test_fifo_ignores_hits(self):
        c = make_cache(capacity=2 * 64, block=64, ways=2, policy="fifo")
        c.access(0, False)
        c.access(64, False)
        c.access(0, False)   # FIFO does not promote
        _, eviction = c.access(128, False)
        assert eviction.block_addr == 0

    def test_random_policy_evicts_something(self):
        c = make_cache(capacity=2 * 64, block=64, ways=2, policy="random")
        c.access(0, False)
        c.access(64, False)
        _, eviction = c.access(128, False)
        assert eviction is not None
        assert eviction.block_addr in (0, 64)
