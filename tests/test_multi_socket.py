"""Multi-socket and network-delay integration tests.

The paper's deployment has one CPU socket behind the ccFPGA, but the
substrate supports several caching agents; these tests confirm that
dirty tracking stays exact when two sockets contend on VFMem lines, and
exercise the section 4.5 network-delay classification path.
"""

import pytest

import repro.common.units as u
from repro.cluster.memnode import MemoryNode
from repro.coherence import CoherentCache, EventKind, Protocol
from repro.fpga.agent import MemoryAgent
from repro.fpga.fmem import FMemCache
from repro.fpga.translation import RemoteTranslationMap
from repro.kona import KonaConfig, KonaRuntime
from repro.mem.address import AddressRange
from repro.net.fabric import Fabric


def two_socket_stack(protocol=Protocol.MESI):
    vfmem = AddressRange(0, 16 * u.MB)
    fabric = Fabric()
    node = MemoryNode("m0", 64 * u.MB, fabric, slab_bytes=16 * u.MB)
    tmap = RemoteTranslationMap(0, 16 * u.MB)
    tmap.bind(0, node.grant_slab())
    agent = MemoryAgent(vfmem, FMemCache(8 * u.MB), tmap, protocol=protocol)
    sockets = []
    for socket_id in (0, 1):
        cache = CoherentCache(socket_id, lambda a: agent.directory,
                              capacity=256 * u.KB, ways=4,
                              protocol=protocol)
        cache.attach(agent.directory)
        sockets.append(cache)
    return agent, sockets


class TestTwoSockets:
    def test_write_migration_tracked_exactly_once(self):
        agent, (s0, s1) = two_socket_stack()
        # Socket 0 writes, socket 1 steals the line for writing, then
        # both flush: the line's final data reaches the bitmap once per
        # actual writeback, and the line ends up marked.
        s0.access(0, True)
        s1.access(0, True)      # cache-to-cache transfer of dirty data
        s0.flush_tracked()
        s1.flush_tracked()
        assert agent.bitmap.dirty_line_count(0) == 1

    def test_read_sharing_between_sockets(self):
        agent, (s0, s1) = two_socket_stack()
        s0.access(64, False)
        s1.access(64, False)
        # Both hold the line; one remote fetch served the page.
        assert agent.counters["remote_fetches"] == 1
        assert agent.counters["fmem_hits"] >= 1

    def test_dirty_read_share_updates_home_under_mesi(self):
        agent, (s0, s1) = two_socket_stack(Protocol.MESI)
        s0.access(0, True)
        s1.access(0, False)     # forces the dirty copy home
        assert agent.bitmap.dirty_line_count(0) == 1

    def test_moesi_defers_home_update_until_eviction(self):
        agent, (s0, s1) = two_socket_stack(Protocol.MOESI)
        s0.access(0, True)
        s1.access(0, False)     # S0 -> OWNED; home not updated yet
        assert agent.bitmap.dirty_line_count(0) == 0
        s0.flush_tracked()      # PutO finally lands the data
        assert agent.bitmap.dirty_line_count(0) == 1

    def test_conservation_under_contention(self):
        agent, (s0, s1) = two_socket_stack()
        written = set()
        for i in range(300):
            socket = (s0, s1)[i % 2]
            addr = (i * 13 % 97) * u.CACHE_LINE
            socket.access(addr, i % 3 == 0)
            if i % 3 == 0:
                written.add(addr // u.CACHE_LINE * u.CACHE_LINE)
        s0.flush_tracked()
        s1.flush_tracked()
        marked = {line for page in agent.bitmap.dirty_pages()
                  for line in agent.bitmap.dirty_lines_of(page)}
        assert marked == written


class TestRuntimeProtocolConfig:
    def test_msi_runtime_reports_upgrades(self):
        config = KonaConfig(fmem_capacity=4 * u.MB,
                            vfmem_capacity=64 * u.MB,
                            slab_bytes=16 * u.MB, protocol="msi")
        rt = KonaRuntime(config)
        region = rt.mmap(1 * u.MB)
        rt.read(region.start)
        rt.write(region.start)       # MSI: explicit upgrade, home sees it
        assert rt.agent.counters["upgrades_seen"] == 1

    def test_mesi_runtime_upgrades_silently(self):
        config = KonaConfig(fmem_capacity=4 * u.MB,
                            vfmem_capacity=64 * u.MB,
                            slab_bytes=16 * u.MB, protocol="mesi")
        rt = KonaRuntime(config)
        region = rt.mmap(1 * u.MB)
        rt.read(region.start)
        rt.write(region.start)
        assert rt.agent.counters["upgrades_seen"] == 0

    def test_invalid_protocol_rejected(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            KonaConfig(protocol="dragon")


class TestNetworkDelay:
    def test_classify_delay_detects_timeout_risk(self):
        config = KonaConfig(fmem_capacity=4 * u.MB,
                            vfmem_capacity=64 * u.MB,
                            slab_bytes=16 * u.MB)
        rt = KonaRuntime(config)
        region = rt.mmap(1 * u.MB)
        primary = rt.translation.resolve(region.start).node
        # A healthy fetch sits far under the coherence timeout.
        healthy = rt.fabric.transfer_cost_ns("compute", primary, 64)
        assert not rt.failures.classify_delay(healthy)
        # Inject a pathological delay: the same fetch now risks an MCE.
        rt.fabric.delay_link("compute", primary, 200_000)
        slow = rt.fabric.transfer_cost_ns("compute", primary, 64)
        assert rt.failures.classify_delay(slow)
        assert rt.failures.counters["timeouts_detected"] == 1

    def test_delayed_fetch_still_completes(self):
        config = KonaConfig(fmem_capacity=4 * u.MB,
                            vfmem_capacity=64 * u.MB,
                            slab_bytes=16 * u.MB)
        rt = KonaRuntime(config)
        region = rt.mmap(1 * u.MB)
        primary = rt.translation.resolve(region.start).node
        rt.fabric.delay_link("compute", primary, 50_000)
        cost = rt.read(region.start)
        assert cost > 50_000      # the delay is visible on the fetch
