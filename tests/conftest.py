"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro.common.units as u
from repro.kona import KonaConfig, KonaRuntime


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(42)


@pytest.fixture
def small_config():
    """A laptop-sized Kona configuration."""
    return KonaConfig(fmem_capacity=4 * u.MB, vfmem_capacity=64 * u.MB,
                      slab_bytes=16 * u.MB)


@pytest.fixture
def runtime(small_config):
    """A fully wired Kona runtime (2 memory nodes)."""
    rt = KonaRuntime(small_config, app_ns_per_access=50.0)
    yield rt
