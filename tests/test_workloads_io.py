"""Tests for trace persistence."""

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import ConfigError
from repro.workloads import WORKLOADS, load_trace, make_trace, save_trace


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        wl = WORKLOADS["redis-seq"]()
        trace = wl.generate(windows=2, seed=5)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.memory_bytes == trace.memory_bytes
        assert np.array_equal(loaded.data, trace.data)

    def test_loaded_trace_is_analyzable(self, tmp_path):
        from repro.tools import analyze
        wl = WORKLOADS["voltdb-tpcc"]()
        trace = wl.generate(windows=3, seed=1)
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        report = analyze(load_trace(path))
        assert len(report.windows) == 3

    def test_wrong_dtype_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, data=np.zeros(4),
                            memory_bytes=np.int64(4096),
                            name=np.bytes_(b"x"))
        with pytest.raises(ConfigError):
            load_trace(path)

    def test_compression_is_effective(self, tmp_path):
        trace = make_trace(
            np.zeros(50_000, dtype=np.uint64),
            np.full(50_000, 8, dtype=np.uint32),
            np.ones(50_000, dtype=bool),
            np.zeros(50_000, dtype=np.uint32), 1 * u.MB)
        path = tmp_path / "zeros.npz"
        save_trace(trace, path)
        assert path.stat().st_size < trace.data.nbytes / 10
