"""Tests for the fetch-side failure policy (paper section 4.5)."""

import pytest

import repro.common.units as u
from repro.common.errors import NodeFailure
from repro.kona import KonaConfig, KonaRuntime
from repro.kona.failures import (
    FailureManager,
    FallbackMode,
    MachineCheckException,
)
from repro.mem.pagetable import PageTable


@pytest.fixture
def rack():
    """A wired runtime with one mapped region (translation is bound)."""
    config = KonaConfig(fmem_capacity=4 * u.MB, vfmem_capacity=64 * u.MB,
                        slab_bytes=16 * u.MB)
    rt = KonaRuntime(config, num_memory_nodes=2, app_ns_per_access=50.0)
    region = rt.mmap(8 * u.MB)
    return rt, region


def _kill_all(rt):
    for name in rt.controller.nodes:
        rt.controller.node(name).fail()


class TestClassifyDelay:
    def test_below_timeout_absorbed(self, rack):
        rt, _ = rack
        fm = rt.failures
        assert not fm.classify_delay(fm.coherence_timeout_ns * 0.5)
        assert fm.counters["timeouts_detected"] == 0

    def test_exactly_at_timeout_absorbed(self, rack):
        rt, _ = rack
        fm = rt.failures
        assert not fm.classify_delay(fm.coherence_timeout_ns)

    def test_above_timeout_trips(self, rack):
        rt, _ = rack
        fm = rt.failures
        assert fm.classify_delay(fm.coherence_timeout_ns * 2)
        assert fm.classify_delay(fm.coherence_timeout_ns * 3)
        assert fm.counters["timeouts_detected"] == 2


class TestMceHandler:
    def test_mce_raised_when_all_replicas_down(self, rack):
        rt, region = rack
        fm = FailureManager(rt.translation, rt.controller,
                            mode=FallbackMode.MCE_HANDLER)
        _kill_all(rt)
        with pytest.raises(MachineCheckException):
            fm.resolve_for_fetch(region.start)
        assert fm.counters["mce_raised"] == 1
        # MCE mode never degrades pages: the handler retries in place.
        assert fm.degraded_pages == []

    def test_healthy_fetch_uses_primary(self, rack):
        rt, region = rack
        fm = FailureManager(rt.translation, rt.controller,
                            mode=FallbackMode.MCE_HANDLER)
        outcome = fm.resolve_for_fetch(region.start)
        assert not outcome.used_replica
        assert outcome.retries == 0


class TestPageFaultFallback:
    def test_degradation_records_original_pfn(self, rack):
        rt, region = rack
        table = PageTable()
        vpn = table.vpn_of(region.start)
        table.map(vpn, pfn=1234)
        fm = FailureManager(rt.translation, rt.controller,
                            mode=FallbackMode.PAGE_FAULT_FALLBACK,
                            page_table=table)
        _kill_all(rt)
        with pytest.raises(NodeFailure):
            fm.resolve_for_fetch(region.start)
        assert fm.degraded_pages == [(vpn, 1234)]
        assert not table.entry(vpn).present

    def test_recover_restores_original_pfn(self, rack):
        rt, region = rack
        table = PageTable()
        vpn = table.vpn_of(region.start)
        table.map(vpn, pfn=1234)
        fm = FailureManager(rt.translation, rt.controller,
                            mode=FallbackMode.PAGE_FAULT_FALLBACK,
                            page_table=table)
        _kill_all(rt)
        with pytest.raises(NodeFailure):
            fm.resolve_for_fetch(region.start)
        assert fm.recover_degraded() == 1
        entry = table.entry(vpn)
        assert entry.present
        # The page must come back on the frame it had, not a made-up one.
        assert entry.pfn == 1234
        assert fm.degraded_pages == []
