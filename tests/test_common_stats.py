"""Tests for counters, CDFs and summary statistics."""

import numpy as np
import pytest

from repro.common.stats import CDF, Counter, geometric_mean, ratio


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("hits")
        c.add("hits", 4)
        assert c["hits"] == 5

    def test_missing_is_zero(self):
        assert Counter()["nope"] == 0

    def test_as_dict_is_a_copy(self):
        c = Counter()
        c.add("x")
        d = c.as_dict()
        d["x"] = 99
        assert c["x"] == 1

    def test_items_sorted(self):
        c = Counter()
        c.add("zeta", 2)
        c.add("alpha", 1)
        c.add("mid", 3)
        assert c.items() == [("alpha", 1), ("mid", 3), ("zeta", 2)]

    def test_merge_sums_overlapping_names(self):
        a, b = Counter(), Counter()
        a.add("hits", 3)
        a.add("only_a", 1)
        b.add("hits", 4)
        b.add("only_b", 2)
        assert a.merge(b) is a
        assert a["hits"] == 7
        assert a["only_a"] == 1
        assert a["only_b"] == 2

    def test_merge_leaves_other_untouched(self):
        a, b = Counter(), Counter()
        b.add("hits", 4)
        a.merge(b)
        a.add("hits")
        assert b["hits"] == 4

    def test_merge_chain_aggregates_workers(self):
        workers = []
        for i in range(3):
            c = Counter()
            c.add("accesses", 100 + i)
            workers.append(c)
        total = Counter()
        for c in workers:
            total.merge(c)
        assert total["accesses"] == 303


class TestCDF:
    def test_from_samples_basic(self):
        cdf = CDF.from_samples([1, 1, 2, 4])
        assert cdf.at(1) == pytest.approx(0.5)
        assert cdf.at(2) == pytest.approx(0.75)
        assert cdf.at(3) == pytest.approx(0.75)
        assert cdf.at(4) == pytest.approx(1.0)

    def test_at_below_support(self):
        cdf = CDF.from_samples([5, 6])
        assert cdf.at(4) == 0.0

    def test_quantile(self):
        cdf = CDF.from_samples([1, 2, 3, 4])
        assert cdf.quantile(0.5) == 2
        assert cdf.quantile(1.0) == 4

    def test_quantile_bounds(self):
        cdf = CDF.from_samples([1])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_mean(self):
        cdf = CDF.from_samples([2, 4, 6])
        assert cdf.mean == pytest.approx(4.0)

    def test_empty(self):
        cdf = CDF.from_samples([])
        assert cdf.at(10) == 0.0
        with pytest.raises(ValueError):
            cdf.quantile(0.5)

    def test_series_roundtrip(self):
        cdf = CDF.from_samples([3, 3, 7])
        series = cdf.series()
        assert series[0] == (3, pytest.approx(2 / 3))
        assert series[-1] == (7, pytest.approx(1.0))


class TestAggregates:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_ratio(self):
        assert ratio(10, 4) == 2.5

    def test_ratio_zero_denominator(self):
        with pytest.raises(ZeroDivisionError):
            ratio(1, 0)
