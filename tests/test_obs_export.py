"""End-to-end exporter tests: a traced runtime produces valid artifacts."""

import json

import pytest

import repro.common.units as u
from repro.kona import KonaConfig, KonaRuntime
from repro.obs import (
    FlightRecorder,
    jsonl_lines,
    validate_chrome_trace,
)


@pytest.fixture()
def traced_runtime():
    recorder = FlightRecorder(tracing=True, sample_interval_ns=10_000.0)
    config = KonaConfig(fmem_capacity=4 * u.MB,
                        vfmem_capacity=64 * u.MB,
                        slab_bytes=16 * u.MB)
    runtime = KonaRuntime(config, recorder=recorder)
    region = runtime.mmap(16 * u.MB)
    # Touch twice the FMem capacity so fetches AND evictions happen.
    for page in range(2048):
        runtime.write(region.start + page * u.PAGE_4K)
        runtime.fabric.clock.advance(50.0)   # app compute between accesses
        if page % 64 == 0:
            runtime.maybe_evict()
            runtime.obs.tick()
    # A full health round-trip, so the trace carries health instants.
    runtime.health.degrade("test-outage")
    runtime.health.start_recovery()
    runtime.health.recovered()
    return runtime


class TestChromeTrace:
    def test_trace_is_schema_valid(self, traced_runtime):
        payload = traced_runtime.obs.chrome_trace()
        assert validate_chrome_trace(payload) == []

    def test_trace_has_runtime_spans(self, traced_runtime):
        events = traced_runtime.obs.chrome_trace()["traceEvents"]
        names = {e["name"] for e in events}
        assert "fetch.fill" in names
        assert "rdma.read" in names
        assert "evict.page" in names

    def test_trace_has_health_instants(self, traced_runtime):
        events = traced_runtime.obs.chrome_trace()["traceEvents"]
        health = [e for e in events if e["name"].startswith("health.")
                  and e["ph"] == "i"]
        states = [e["name"] for e in health]
        assert states == ["health.DEGRADED", "health.RECOVERING",
                          "health.HEALTHY"]
        assert health[0]["args"]["reason"] == "test-outage"

    def test_rdma_reads_nest_inside_fills(self, traced_runtime):
        events = traced_runtime.obs.chrome_trace()["traceEvents"]
        fills = [(e["ts"], e["ts"] + e["dur"]) for e in events
                 if e["name"] == "fetch.fill"]
        reads = [e["ts"] for e in events if e["name"] == "rdma.read"]
        assert reads, "no rdma.read spans traced"
        assert all(any(lo <= ts <= hi for lo, hi in fills)
                   for ts in reads[:20])

    def test_timestamps_are_microseconds(self, traced_runtime):
        recorder = traced_runtime.obs
        raw = [e for e in recorder.tracer.events if e["ts"] > 0]
        exported = recorder.chrome_trace()["traceEvents"]
        by_name_raw = raw[-1]
        match = [e for e in exported if e.get("name") == by_name_raw["name"]
                 and e["ts"] == by_name_raw["ts"] / 1e3]
        assert match

    def test_written_file_round_trips(self, traced_runtime, tmp_path):
        path = traced_runtime.obs.write_chrome_trace(
            str(tmp_path / "trace.json"))
        payload = json.loads(open(path).read())
        assert validate_chrome_trace(payload) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_missing_fields(self):
        errors = validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        assert any("missing 'name'" in e for e in errors)
        assert any("dur" in e for e in errors)

    def test_rejects_unknown_phase(self):
        errors = validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "Z", "ts": 0, "pid": 1, "tid": 1}]})
        assert any("unknown phase" in e for e in errors)

    def test_rejects_negative_ts(self):
        errors = validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "i", "ts": -5, "pid": 1, "tid": 1}]})
        assert any("bad ts" in e for e in errors)

    def test_accepts_minimal_valid(self):
        assert validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "i", "ts": 0, "pid": 1, "tid": 1}]}) == []


class TestJsonlAndSampler:
    def test_every_line_parses(self, traced_runtime):
        lines = jsonl_lines(traced_runtime.obs)
        assert lines
        kinds = set()
        for line in lines:
            kinds.add(json.loads(line)["type"])
        assert kinds == {"event", "sample", "metric"}

    def test_sampler_produced_time_series(self, traced_runtime):
        samples = traced_runtime.obs.sampler.samples
        assert len(samples) >= 2
        ts = [t for t, _ in samples]
        assert ts == sorted(ts)
        assert all("memory.fmem_occupancy" in row for _, row in samples)

    def test_prometheus_dump_covers_sections(self, traced_runtime):
        text = traced_runtime.obs.prometheus_text()
        assert "memory_fmem_bytes" in text
        assert "fetch_remote_fetches" in text
        assert "kona_access_stall_ns_count" in text
        # Replication gauges render even on an unreplicated runtime
        # (None-guarded to zero), so dashboards keep a stable schema.
        assert "replication_backlog_slots 0" in text
        assert "replication_failovers 0" in text


@pytest.fixture()
def replicated_traced_runtime():
    """A traced, replicated runtime that lives through a failover."""
    recorder = FlightRecorder(tracing=True, sample_interval_ns=10_000.0)
    config = KonaConfig(fmem_capacity=4 * u.MB,
                        vfmem_capacity=48 * u.MB,
                        slab_bytes=8 * u.MB,
                        replication_factor=2)
    runtime = KonaRuntime(config, num_memory_nodes=3, recorder=recorder)
    runtime.attach_data_plane()
    region = runtime.mmap(8 * u.MB)
    for page in range(2048):
        runtime.write(region.start + page * u.PAGE_4K)
        runtime.fabric.clock.advance(50.0)
        if page % 64 == 0:
            runtime.maybe_evict()
            runtime.obs.tick()
    slot = runtime.replication.slot_of(region.start)
    victim = runtime.replication.sets[slot].primary.node
    runtime.controller.node(victim).fail()
    runtime.on_memnode_failure(victim)
    runtime.recover()
    runtime.obs.tick()
    return runtime


class TestReplicationExportMatrix:
    """Replication telemetry flows through every exporter."""

    def test_chrome_trace_valid_and_has_failover_events(
            self, replicated_traced_runtime):
        payload = replicated_traced_runtime.obs.chrome_trace()
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert "replication.promote" in names
        assert "replication.rebuild" in names
        assert "runtime.failover" in names

    def test_prometheus_dump_has_live_replication_gauges(
            self, replicated_traced_runtime):
        text = replicated_traced_runtime.obs.prometheus_text()
        assert "replication_factor 2" in text
        assert "replication_failovers 1" in text
        assert "replication_backlog_slots 0" in text
        assert "replication_lines_replicated" in text

    def test_sampler_series_include_replication(
            self, replicated_traced_runtime):
        samples = replicated_traced_runtime.obs.sampler.samples
        assert samples
        _, last = samples[-1]
        assert "replication.factor" in last
        assert "replication.promotions" in last

    def test_jsonl_lines_parse_with_replication_metrics(
            self, replicated_traced_runtime):
        lines = jsonl_lines(replicated_traced_runtime.obs)
        metric_names = {json.loads(line)["name"] for line in lines
                        if json.loads(line)["type"] == "metric"}
        assert any(name.startswith("replication.")
                   for name in metric_names)
