"""Tests for the columnar (memory-mapped) trace format."""

import json
import os

import numpy as np
import pytest

from repro.common import units
from repro.common.errors import ConfigError
from repro.workloads.trace import (
    StreamingTraceWriter,
    generate_hot_mix_stream,
    iter_trace_chunks,
    load_trace,
    make_trace,
    open_columnar,
    read_columnar_meta,
    save_columnar,
    save_trace,
)


def _random_trace(n=5000, seed=3):
    rng = np.random.default_rng(seed)
    return make_trace(
        (rng.integers(0, 1 << 20, n).astype(np.uint64)
         * np.uint64(units.CACHE_LINE)),
        np.full(n, units.WORD, np.uint32),
        rng.random(n) < 0.3,
        rng.integers(0, 4, n).astype(np.uint32),
        memory_bytes=64 * units.MB, name="rand")


class TestRoundTrip:
    def test_columnar_preserves_all_columns(self, tmp_path):
        trace = _random_trace()
        path = str(tmp_path / "t.trace")
        save_columnar(trace, path)
        columnar = open_columnar(path)
        assert len(columnar) == len(trace)
        assert columnar.memory_bytes == trace.memory_bytes
        assert columnar.name == trace.name
        assert np.array_equal(columnar.addrs, trace.addrs)
        assert np.array_equal(columnar.writes, trace.writes)
        assert np.array_equal(columnar.sizes, trace.sizes)
        assert np.array_equal(columnar.windows, trace.windows)

    def test_npz_columnar_npz_is_exact(self, tmp_path):
        trace = _random_trace()
        npz_a = tmp_path / "a.npz"
        columnar = str(tmp_path / "b.trace")
        npz_b = tmp_path / "c.npz"
        save_trace(trace, npz_a)
        save_columnar(load_trace(npz_a), columnar)
        save_trace(open_columnar(columnar).materialize(), npz_b)
        again = load_trace(npz_b)
        assert np.array_equal(again.data, trace.data)
        assert again.memory_bytes == trace.memory_bytes

    def test_columns_are_memory_mapped(self, tmp_path):
        trace = _random_trace()
        path = str(tmp_path / "t.trace")
        save_columnar(trace, path)
        columnar = open_columnar(path)
        assert isinstance(columnar.addrs, np.memmap)
        assert isinstance(columnar.writes, np.memmap)


class TestStreamingWriter:
    def test_chunked_writes_equal_monolithic(self, tmp_path):
        trace = _random_trace()
        mono = str(tmp_path / "mono.trace")
        chunked = str(tmp_path / "chunked.trace")
        save_columnar(trace, mono)
        with StreamingTraceWriter(chunked, trace.memory_bytes, "rand",
                                  columns=("addr", "size", "write",
                                           "window")) as writer:
            for pos in range(0, len(trace), 777):
                hi = min(pos + 777, len(trace))
                writer.append(addr=trace.addrs[pos:hi],
                              size=trace.sizes[pos:hi],
                              write=trace.writes[pos:hi],
                              window=trace.windows[pos:hi])
        a, b = open_columnar(mono), open_columnar(chunked)
        assert np.array_equal(a.addrs, b.addrs)
        assert np.array_equal(a.writes, b.writes)
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(a.windows, b.windows)

    def test_minimal_columns_synthesize_on_materialize(self, tmp_path):
        path = str(tmp_path / "min.trace")
        with StreamingTraceWriter(path, 1 * units.MB) as writer:
            writer.append(addr=np.arange(10, dtype=np.uint64) * 64,
                          write=np.zeros(10, dtype=bool))
        columnar = open_columnar(path)
        assert columnar.sizes is None and columnar.windows is None
        trace = columnar.materialize()
        assert (trace.sizes == units.WORD).all()
        assert (trace.windows == 0).all()

    def test_npy_files_load_with_plain_numpy(self, tmp_path):
        # The fixed-width headers must still be valid .npy files.
        path = str(tmp_path / "npy.trace")
        addrs = np.arange(1000, dtype=np.uint64)
        with StreamingTraceWriter(path, units.MB) as writer:
            writer.append(addr=addrs, write=addrs % 3 == 0)
        loaded = np.load(os.path.join(path, "addr.npy"))
        assert np.array_equal(loaded, addrs)

    def test_writer_validates_columns(self, tmp_path):
        path = str(tmp_path / "bad.trace")
        with pytest.raises(ConfigError):
            StreamingTraceWriter(path, units.MB, columns=("addr",))
        with pytest.raises(ConfigError):
            StreamingTraceWriter(path, units.MB,
                                 columns=("addr", "write", "bogus"))
        writer = StreamingTraceWriter(path, units.MB)
        with pytest.raises(ConfigError):
            writer.append(addr=np.zeros(4, np.uint64))
        with pytest.raises(ConfigError):
            writer.append(addr=np.zeros(4, np.uint64),
                          write=np.zeros(3, bool))
        writer.close()


class TestMetaValidation:
    def test_missing_meta_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            open_columnar(str(tmp_path))

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "x.trace"
        path.mkdir()
        (path / "meta.json").write_text(json.dumps(
            {"format": "other", "version": 1}))
        with pytest.raises(ConfigError):
            read_columnar_meta(str(path))

    def test_length_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_columnar(_random_trace(100), path)
        meta = read_columnar_meta(path)
        meta["length"] = 99
        with open(os.path.join(path, "meta.json"), "w") as fh:
            json.dump(meta, fh)
        with pytest.raises(ConfigError):
            open_columnar(path)


class TestChunkIteration:
    def test_chunks_cover_trace_in_order(self, tmp_path):
        trace = _random_trace(4096 + 123)
        path = str(tmp_path / "t.trace")
        save_columnar(trace, path)
        chunks = list(iter_trace_chunks(path, 1024))
        assert [c[0].size for c in chunks] == [1024, 1024, 1024, 1024, 123]
        assert np.array_equal(np.concatenate([a for a, _ in chunks]),
                              trace.addrs)
        assert np.array_equal(np.concatenate([w for _, w in chunks]),
                              trace.writes)

    def test_bad_chunk_size_rejected(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_columnar(_random_trace(10), path)
        with pytest.raises(ConfigError):
            list(iter_trace_chunks(path, 0))


class TestHotMixStream:
    def test_deterministic_across_regeneration(self, tmp_path):
        kwargs = dict(num_accesses=50_000, hot_lines=2048,
                      region_bytes=8 * units.MB, seed=11,
                      chunk_size=1 << 13)
        a = generate_hot_mix_stream(str(tmp_path / "a"), **kwargs)
        b = generate_hot_mix_stream(str(tmp_path / "b"), **kwargs)
        assert np.array_equal(a.addrs, b.addrs)
        assert np.array_equal(a.writes, b.writes)

    def test_chunks_seeded_independently(self, tmp_path):
        # Chunk i draws from rng([seed, i]); a prefix generated with
        # the same chunk size is bit-identical, so partial regeneration
        # (or parallel generation) can never drift from a full one.
        full = generate_hot_mix_stream(
            str(tmp_path / "full"), 40_000, hot_lines=1024,
            region_bytes=4 * units.MB, seed=5, chunk_size=1 << 13)
        prefix = generate_hot_mix_stream(
            str(tmp_path / "prefix"), 24_576, hot_lines=1024,
            region_bytes=4 * units.MB, seed=5, chunk_size=1 << 13)
        n = len(prefix)
        assert np.array_equal(full.addrs[:n], prefix.addrs[:])
        assert np.array_equal(full.writes[:n], prefix.writes[:])

    def test_addresses_stay_in_region(self, tmp_path):
        columnar = generate_hot_mix_stream(
            str(tmp_path / "g"), 30_000, hot_lines=512,
            region_bytes=2 * units.MB, seed=9, chunk_size=1 << 12)
        assert int(columnar.addrs[:].max()) < 2 * units.MB
        assert columnar.memory_bytes == 2 * units.MB

    def test_rejects_bad_geometry(self, tmp_path):
        with pytest.raises(ConfigError):
            generate_hot_mix_stream(str(tmp_path / "g"), 0)
        with pytest.raises(ConfigError):
            generate_hot_mix_stream(str(tmp_path / "g"), 10,
                                    hot_lines=1 << 30,
                                    region_bytes=units.MB)
