"""Tests for traces and the workload generators."""

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import ConfigError
from repro.workloads import (
    WORKLOADS,
    WorkloadModel,
    WriteProfile,
    make_trace,
    one_line_per_page,
    dirty_lines_pattern,
)
from repro.workloads.trace import Trace, concatenate


class TestTrace:
    def _trace(self):
        addrs = np.array([0, 64, 4096, 8192], dtype=np.uint64)
        sizes = np.array([8, 8, 16, 64], dtype=np.uint32)
        writes = np.array([True, False, True, False])
        windows = np.array([0, 0, 1, 1], dtype=np.uint32)
        return make_trace(addrs, sizes, writes, windows, 16 * u.KB, "t")

    def test_fields(self):
        t = self._trace()
        assert len(t) == 4
        assert t.num_windows == 2
        assert t.total_bytes() == 96

    def test_window_slice(self):
        t = self._trace()
        w1 = t.window_slice(1)
        assert len(w1) == 2
        assert list(w1.addrs) == [4096, 8192]

    def test_write_read_split(self):
        t = self._trace()
        assert len(t.writes_only()) == 2
        assert len(t.reads_only()) == 2

    def test_iter_windows(self):
        t = self._trace()
        windows = dict(t.iter_windows())
        assert set(windows) == {0, 1}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            make_trace(np.zeros(2, dtype=np.uint64),
                       np.zeros(3, dtype=np.uint32),
                       np.zeros(2, dtype=bool),
                       np.zeros(2, dtype=np.uint32), 4096)

    def test_concatenate_renumbers_windows(self):
        t = self._trace()
        joined = concatenate([t, t])
        assert joined.num_windows == 4


class TestWriteProfile:
    def test_partial_lines_solves_mix(self):
        p = WriteProfile(lines_per_page=25.0, bytes_per_line=59.0,
                         pages_per_huge=25.8, dirty_pages_per_window=100,
                         full_page_fraction=0.30)
        mixed = (0.30 * 64 + 0.70 * p.partial_lines_per_page)
        assert mixed == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            WriteProfile(lines_per_page=0, bytes_per_line=10,
                         pages_per_huge=1, dirty_pages_per_window=1)
        with pytest.raises(ConfigError):
            WriteProfile(lines_per_page=1, bytes_per_line=10,
                         pages_per_huge=1, dirty_pages_per_window=1,
                         addressing="psychic")


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_all_workloads_generate(self, name):
        wl = WORKLOADS[name]()
        trace = wl.generate(windows=3, seed=0)
        assert len(trace) > 0
        assert trace.num_windows == 3
        assert trace.name == name
        # All addresses stay inside the workload's memory.
        assert int(trace.addrs.max()) < wl.memory_bytes

    def test_deterministic_given_seed(self):
        wl = WORKLOADS["redis-rand"]()
        t1 = wl.generate(windows=2, seed=7)
        t2 = wl.generate(windows=2, seed=7)
        assert np.array_equal(t1.data, t2.data)

    def test_different_seeds_differ(self):
        wl = WORKLOADS["redis-rand"]()
        t1 = wl.generate(windows=2, seed=1)
        t2 = wl.generate(windows=2, seed=2)
        assert not np.array_equal(t1.data, t2.data)

    def test_startup_windows_are_dense(self):
        wl = WORKLOADS["redis-rand"]()   # startup_windows=2
        trace = wl.generate(windows=4, seed=0)
        startup = trace.window_slice(0).writes_only()
        # Bulk load: whole pages written.
        lines = np.unique(startup.addrs // np.uint64(u.CACHE_LINE))
        pages = np.unique(lines // np.uint64(u.LINES_PER_PAGE))
        assert lines.size == pages.size * u.LINES_PER_PAGE

    def test_sequential_addressing_advances(self):
        wl = WORKLOADS["redis-seq"]()
        trace = wl.generate(windows=4, seed=0)
        w2 = trace.window_slice(2).writes_only()
        w3 = trace.window_slice(3).writes_only()
        assert int(w3.addrs.mean()) != int(w2.addrs.mean())


class TestSynthetic:
    def test_one_line_per_page_layout(self):
        streams = one_line_per_page(1 * u.MB, threads=2, base=0)
        assert len(streams) == 2
        addrs, writes = streams[0]
        pages = 1 * u.MB // u.PAGE_4K
        assert addrs.size == 2 * pages           # read + write per page
        assert not writes[0] and writes[1]
        # Thread regions are disjoint.
        assert int(streams[1][0].min()) >= 1 * u.MB

    def test_dirty_lines_contiguous(self):
        addrs, writes = dirty_lines_pattern(8 * u.KB, 4)
        assert addrs.size == 8   # 2 pages x 4 lines
        assert writes.all()
        first_page = addrs[:4] % u.PAGE_4K
        assert list(first_page) == [0, 64, 128, 192]

    def test_dirty_lines_alternate(self):
        addrs, _ = dirty_lines_pattern(4 * u.KB, 3, "alternate")
        assert list(addrs % u.PAGE_4K) == [0, 128, 256]

    def test_invalid_patterns_rejected(self):
        with pytest.raises(ConfigError):
            dirty_lines_pattern(4 * u.KB, 40, "alternate")
        with pytest.raises(ConfigError):
            dirty_lines_pattern(4 * u.KB, 1, "swirl")
