"""Tests for the Pin-style amplification analyzer."""

import numpy as np
import pytest

import repro.common.units as u
from repro.common.errors import ConfigError
from repro.tools.pintool import (
    analyze,
    analyze_window,
    lines_per_page_cdf,
    segment_length_cdf,
)
from repro.workloads import WORKLOADS, make_trace
from repro.analysis import TABLE2


def trace_of(addr_size_pairs, writes=True, memory=1 * u.MB):
    addrs = np.array([a for a, _ in addr_size_pairs], dtype=np.uint64)
    sizes = np.array([s for _, s in addr_size_pairs], dtype=np.uint32)
    w = np.full(len(addrs), writes)
    windows = np.zeros(len(addrs), dtype=np.uint32)
    return make_trace(addrs, sizes, w, windows, memory)


class TestWindowAnalysis:
    def test_single_word_write(self):
        # 8 bytes written: 1 line, 1 page, 1 hugepage dirty.
        t = trace_of([(0, 8)])
        rec = analyze_window(t, 0)
        assert rec.unique_bytes == 8
        assert rec.dirty_lines == 1
        assert rec.amp_cl == pytest.approx(8.0)
        assert rec.amp_4k == pytest.approx(512.0)
        assert rec.amp_2m == pytest.approx(262144.0)

    def test_unaligned_write_spans_lines(self):
        # 16 bytes starting at offset 56 cross a line boundary.
        t = trace_of([(56, 16)])
        rec = analyze_window(t, 0)
        assert rec.dirty_lines == 2
        assert rec.unique_bytes == 16

    def test_overlapping_writes_counted_once(self):
        t = trace_of([(0, 64), (32, 64)])
        rec = analyze_window(t, 0)
        assert rec.unique_bytes == 96

    def test_full_page_write_amp_one(self):
        t = trace_of([(0, u.PAGE_4K)])
        rec = analyze_window(t, 0)
        assert rec.amp_4k == pytest.approx(1.0)
        assert rec.amp_cl == pytest.approx(1.0)

    def test_reads_ignored(self):
        t = trace_of([(0, 8)], writes=False)
        assert analyze_window(t, 0) is None

    def test_ratio_is_64_for_single_line_pages(self):
        t = trace_of([(0, 64), (u.PAGE_4K, 64)])
        rec = analyze_window(t, 0)
        assert rec.page_vs_line_ratio == pytest.approx(64.0)


class TestReportAggregation:
    def test_mean_skips_requested_windows(self):
        wl = WORKLOADS["redis-seq"]()
        trace = wl.generate(windows=5, seed=0)
        report = analyze(trace)
        full = report.mean_amplification(skip_first=0, skip_last=0)
        steady = report.mean_amplification(skip_first=wl.startup_windows,
                                           skip_last=1)
        # Startup bulk-load windows have amp ~1, dragging the mean down.
        assert steady["4k"] > full["4k"]

    def test_skip_everything_rejected(self):
        wl = WORKLOADS["redis-seq"]()
        report = analyze(wl.generate(windows=2, seed=0))
        with pytest.raises(ConfigError):
            report.mean_amplification(skip_first=5, skip_last=5)

    def test_per_window_ratio_series(self):
        wl = WORKLOADS["redis-rand"]()
        report = analyze(wl.generate(windows=4, seed=0))
        series = report.per_window_ratio()
        assert len(series) == 4
        assert all(ratio >= 1.0 for _, ratio in series)


@pytest.mark.slow
class TestTable2Calibration:
    """The headline Table 2 reproduction, asserted per workload."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_amplification_matches_paper(self, name):
        wl = WORKLOADS[name]()
        trace = wl.generate(windows=6, seed=3)
        report = analyze(trace)
        measured = report.mean_amplification(skip_first=wl.startup_windows,
                                             skip_last=1)
        ref = TABLE2[name]
        assert measured["4k"] == pytest.approx(ref.amp_4k, rel=0.30)
        assert measured["cl"] == pytest.approx(ref.amp_cl, rel=0.20)
        assert measured["2m"] == pytest.approx(ref.amp_2m, rel=0.40)

    def test_all_workloads_amplify_above_2_at_page_granularity(self):
        # Paper: "All applications exhibit amplification (> 2) for page
        # granularity tracking."
        for name, factory in WORKLOADS.items():
            wl = factory()
            trace = wl.generate(windows=4, seed=1)
            m = analyze(trace).mean_amplification(
                skip_first=wl.startup_windows, skip_last=1)
            assert m["4k"] > 2.0, name
            # "cache-line tracking results in a very small amplification
            # (close to 1)".
            assert m["cl"] < 2.0, name


class TestSpatialLocality:
    def test_rand_pages_have_few_lines(self):
        wl = WORKLOADS["redis-rand"]()
        trace = wl.generate(windows=4, seed=0)
        steady = trace.data[trace.data["window"] >= wl.startup_windows]
        from repro.workloads.trace import Trace
        cdf = lines_per_page_cdf(Trace(steady, trace.memory_bytes), writes=True)
        # Figure 2: Redis-Rand skewed toward 1-8 lines per page.
        assert cdf.at(8) > 0.9

    def test_seq_pages_bimodal(self):
        wl = WORKLOADS["redis-seq"]()
        trace = wl.generate(windows=4, seed=0)
        steady = trace.data[trace.data["window"] >= wl.startup_windows]
        from repro.workloads.trace import Trace
        cdf = lines_per_page_cdf(Trace(steady, trace.memory_bytes), writes=True)
        # Figure 2: a substantial fraction of pages fully accessed.
        assert 1.0 - cdf.at(63) > 0.15

    def test_rand_segments_short(self):
        wl = WORKLOADS["redis-rand"]()
        trace = wl.generate(windows=4, seed=0)
        steady = trace.data[trace.data["window"] >= wl.startup_windows]
        from repro.workloads.trace import Trace
        cdf = segment_length_cdf(Trace(steady, trace.memory_bytes), writes=True)
        # Figure 3: most segments are 1-4 contiguous lines.
        assert cdf.at(4) > 0.75

    def test_seq_segments_have_page_length_tail(self):
        wl = WORKLOADS["redis-seq"]()
        trace = wl.generate(windows=4, seed=0)
        steady = trace.data[trace.data["window"] >= wl.startup_windows]
        from repro.workloads.trace import Trace
        cdf = segment_length_cdf(Trace(steady, trace.memory_bytes), writes=True)
        assert 1.0 - cdf.at(63) > 0.1
