"""Causal fault tracing: capture, attribution, anomalies, exporters.

The load-bearing contracts:

* capture observes without perturbing — a capture-enabled run is
  bit-identical to a capture-off run in every counter, account,
  bitmap bit and the simulated clock;
* the record stream is complete — exactly one record per cache miss,
  identical between the scalar and batched engines and between
  streamed and monolithic replay;
* the reductions are exact and the exporters validate.
"""

import json

import numpy as np
import pytest

import repro.common.units as u
from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.experiments.bench import runtime_fingerprint
from repro.kona import KonaConfig, KonaRuntime
from repro.obs.causal import (
    FLAG_FABRIC_DOWN,
    FLAG_REPLICA_READ,
    HOPS,
    CausalCapture,
    FaultLog,
    tail_anomalies,
)
from repro.obs.export import (
    fault_chain_events,
    fault_chain_trace,
    validate_chrome_trace,
)
from repro.obs.registry import HistogramMetric, MetricsRegistry
from repro.obs.sampler import Sampler
from repro.obs.tsdb import TimeSeriesStore


def make_runtime(**config_kwargs):
    defaults = dict(fmem_capacity=4 * u.MB, vfmem_capacity=16 * u.MB,
                    slab_bytes=1 * u.MB)
    defaults.update(config_kwargs)
    return KonaRuntime(KonaConfig(**defaults), app_ns_per_access=50.0)


def hot_cold_trace(n, seed=11, hot_lines=4096, region_bytes=12 * u.MB,
                   cold_fraction=0.05):
    """Zero-based hot/cold access mix exercising hits, misses and
    evictions (the cold tail overflows the 4 MB FMem)."""
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, hot_lines, size=n, dtype=np.int64)
    cold = rng.random(n) < cold_fraction
    lines[cold] = rng.integers(hot_lines, region_bytes // u.CACHE_LINE,
                               size=int(cold.sum()), dtype=np.int64)
    return lines * u.CACHE_LINE, rng.random(n) < 0.3


def run_with_capture(engine="batched", n=30_000, **capture_kwargs):
    rt = make_runtime()
    region = rt.mmap(12 * u.MB)
    cap = rt.attach_causal_capture(**capture_kwargs)
    addrs, writes = hot_cold_trace(n)
    report = rt.run_trace(addrs + np.int64(region.start), writes,
                          engine=engine)
    return rt, report, cap


class TestCaptureCompleteness:
    def test_one_record_per_miss(self):
        rt, _, cap = run_with_capture()
        log = cap.log
        assert log.n == rt.counters["cache_misses"]
        assert log.n > 0
        assert (log.kinds[0] + log.kinds[1]) == log.n
        assert log.kinds[1] == rt.agent.counters["remote_fetches"]

    def test_engines_emit_identical_streams(self):
        _, _, cap_b = run_with_capture(engine="batched")
        _, _, cap_s = run_with_capture(engine="scalar")
        assert cap_b.log.aggregate() == cap_s.log.aggregate()

    def test_streamed_equals_monolithic(self):
        rt, _, cap = run_with_capture()
        rt2 = make_runtime()
        region2 = rt2.mmap(12 * u.MB)
        cap2 = rt2.attach_causal_capture()
        addrs, writes = hot_cold_trace(30_000)
        # Ragged 256-multiple chunks (only the last may be ragged).
        cuts = [0, 4 * 256, 31 * 256, 64 * 256, 65 * 256, 30_000]
        chunks = ((addrs[a:b], writes[a:b])
                  for a, b in zip(cuts, cuts[1:]))
        rt2.run_trace_stream(chunks, base=region2.start)
        assert cap.log.aggregate() == cap2.log.aggregate()

    def test_hop_cost_model(self):
        rt, _, cap = run_with_capture()
        log = cap.log
        lat = rt.agent.latency
        # FMem hits stall only on the memnode hop, at fmem_ns.
        assert set(log.spectra["mem"]) <= {0.0, lat.fmem_ns}
        # Remote fetches stall on the directory hop at the coherence
        # message cost; the fabric hop carries the RDMA line read.
        assert set(log.spectra["dir"]) <= {0.0, lat.coherence_msg_ns}
        assert log.spectra["dir"].get(lat.coherence_msg_ns, 0) \
            == log.kinds[1]
        fab_faults = sum(c for v, c in log.spectra["fab"].items() if v)
        assert fab_faults == log.kinds[1]


class TestCaptureIsInvisible:
    def test_fingerprint_bit_identical_with_capture(self):
        addrs0, writes = hot_cold_trace(30_000)
        fps = {}
        for mode in ("off", "on"):
            rt = make_runtime()
            region = rt.mmap(12 * u.MB)
            if mode == "on":
                rt.attach_causal_capture()
            report = rt.run_trace(addrs0 + np.int64(region.start), writes)
            fps[mode] = runtime_fingerprint(rt, report)
        assert fps["on"] == fps["off"]

    def test_scalar_access_path_unperturbed(self):
        costs = {}
        for mode in ("off", "on"):
            rt = make_runtime()
            region = rt.mmap(2 * u.MB)
            if mode == "on":
                rt.attach_causal_capture()
            costs[mode] = [rt.read(region.start + i * u.PAGE_4K)
                           for i in range(64)]
        assert costs["on"] == costs["off"]

    def test_attach_is_idempotent(self):
        rt = make_runtime()
        cap = rt.attach_causal_capture()
        assert rt.attach_causal_capture() is cap


class TestReplicationHop:
    def test_replica_read_charged_to_repl_hop(self):
        cfg = dict(fmem_capacity=4 * u.MB, vfmem_capacity=48 * u.MB,
                   slab_bytes=8 * u.MB, replication_factor=2)
        rt = KonaRuntime(KonaConfig(**cfg), num_memory_nodes=3)
        cap = rt.attach_causal_capture()
        region = rt.mmap(1 * u.MB)
        rt.read(region.start)
        primary = rt.translation.resolve(region.start).node
        rt.controller.node(primary).fail()
        rt.read(region.start + 8 * u.PAGE_4K)
        log = cap.log
        assert log.replica_faults == rt.counters["replica_reads"] == 1
        assert any(v > 0 for v in log.spectra["repl"])
        top = log.exemplars[0]
        assert top[11] > 0                       # repl hop stalled
        assert top[7] & FLAG_REPLICA_READ
        assert log.dominant_hop() == "repl"

    def test_fabric_down_flag(self):
        rt, _, cap = run_with_capture(n=2_000)
        assert cap.log.fabric_down_faults == 0   # healthy rack
        cfg = dict(fmem_capacity=4 * u.MB, vfmem_capacity=48 * u.MB,
                   slab_bytes=8 * u.MB, replication_factor=2)
        rt2 = KonaRuntime(KonaConfig(**cfg), num_memory_nodes=3)
        cap2 = rt2.attach_causal_capture()
        region = rt2.mmap(1 * u.MB)
        rt2.read(region.start)
        primary = rt2.translation.resolve(region.start).node
        rt2.controller.node(primary).fail()
        rt2.read(region.start + 8 * u.PAGE_4K)
        # The healthy first fetch is unflagged; the fetch during the
        # outage carries the fabric-down chaos flag.
        flags = [ex[7] for ex in sorted(cap2.log.exemplars,
                                        key=lambda ex: ex[1])]
        assert flags[0] & FLAG_FABRIC_DOWN == 0
        assert flags[-1] & FLAG_FABRIC_DOWN


class TestFaultLogReductions:
    def test_quantiles_exact_from_spectrum(self):
        log = FaultLog()
        cap = CausalCapture()
        for i in range(90):
            cap.record(i, i * 64, None, 0, 0.0, 0.0, 220.0)
        for i in range(90, 100):
            cap.record(i, i * 64, "mem0", 1, 70.0, 1519.32, 0.0)
        log.merge(cap.log)
        assert log.quantile(0.5) == 220.0
        assert log.quantile(0.95) == pytest.approx(70.0 + 1519.32)
        assert log.total_stall_ns() == pytest.approx(
            90 * 220.0 + 10 * (70.0 + 1519.32))

    def test_histogram_rebuild_matches_observations(self):
        _, _, cap = run_with_capture(n=10_000)
        log = cap.log
        hist = log.histogram()
        assert hist.count == log.n
        assert hist.sum == pytest.approx(log.total_stall_ns())
        ref = HistogramMetric()
        for v, c in sorted(log.spectra["total"].items()):
            for _ in range(c):
                ref.observe(v)
        assert hist._buckets == ref._buckets

    def test_summary_is_json_serializable(self):
        _, _, cap = run_with_capture(n=5_000)
        payload = json.dumps(cap.log.summary())
        assert "dominant_hop" in payload


class TestTailAnomalies:
    def _log_with_spike(self, spike_window=7, windows=12, per=64):
        cap = CausalCapture(window_size=256)
        for w in range(windows):
            if w == spike_window:
                # The outage window: a handful of faults stalled on
                # huge replication waits.
                for i in range(3):
                    cap._repl_ns = 250_000.0
                    cap.record(w * 256 + i, i * 64, "mem1", 1, 70.0,
                               1519.32, 0.0)
                continue
            for i in range(per):
                seq = w * 256 + i
                cap.record(seq, seq * 64, "mem0", 1, 70.0, 1519.32, 0.0)
        return cap.log

    def test_spike_window_flagged(self):
        log = self._log_with_spike()
        anomalies = tail_anomalies(log)
        assert anomalies
        top = anomalies[0]
        assert top["window"] == 7
        assert top["dominant_hop"] == "repl"
        assert top["max_ns"] > 250_000.0
        assert top["score"] == float("inf") or top["score"] > 3.5

    def test_uniform_log_has_no_anomalies(self):
        cap = CausalCapture(window_size=256)
        for seq in range(8 * 256):
            cap.record(seq, seq * 64, "mem0", 1, 70.0, 1519.32, 0.0)
        assert tail_anomalies(cap.log) == []

    def test_too_few_windows_is_silent(self):
        log = self._log_with_spike(spike_window=1, windows=2)
        assert tail_anomalies(log, min_windows=4) == []


class TestHistogramMerge:
    def test_merge_equals_single_stream(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(500.0, size=1_000)
        whole, left, right = (HistogramMetric() for _ in range(3))
        for i, v in enumerate(values):
            whole.observe(v)
            (left if i % 2 else right).observe(v)
        left.merge(right)
        assert left._buckets == whole._buckets
        assert left.count == whole.count
        assert left.min == whole.min and left.max == whole.max
        assert left.sum == pytest.approx(whole.sum)

    def test_merge_rejects_other_types(self):
        with pytest.raises(ConfigError):
            HistogramMetric().merge(object())

    def test_merge_empty_is_identity(self):
        hist = HistogramMetric()
        hist.observe(5.0)
        before = dict(hist._buckets)
        hist.merge(HistogramMetric())
        assert hist._buckets == before and hist.count == 1


class TestSamplerCadence:
    def test_late_tick_does_not_drift_the_grid(self):
        clock = SimClock()
        sampler = Sampler(MetricsRegistry(clock=clock), interval_ns=1000.0,
                          clock=clock)
        clock.advance_to(1000.0)
        assert sampler.maybe_sample()
        # A tick landing mid-interval (a streamed chunk boundary) must
        # reschedule on the grid (3000), not slide to 2500 + 1000.
        clock.advance_to(2500.0)
        assert sampler.maybe_sample()
        assert sampler._next_due == 3000.0
        clock.advance_to(3200.0)
        assert sampler.maybe_sample()     # old sliding code: not due
        clock.advance_to(3300.0)
        assert not sampler.maybe_sample()  # and no double fire

    def test_prime_interval_stays_grid_anchored(self):
        # Chunk-boundary ticks (multiples of 1024) against a prime
        # cadence: every due time stays a multiple of the interval no
        # matter how late each tick lands.
        clock = SimClock()
        sampler = Sampler(MetricsRegistry(clock=clock), interval_ns=997.0,
                          clock=clock)
        fired = 0
        for k in range(1, 101):
            clock.advance_to(k * 1024.0)
            fired += sampler.maybe_sample()
            assert sampler._next_due % 997.0 == 0.0
        # Interval < tick spacing: exactly one sample per tick.
        assert fired == 100


class TestTsdbMerge:
    def test_shifted_merge_equals_monolithic(self):
        whole = TimeSeriesStore()
        first = TimeSeriesStore()
        second = TimeSeriesStore()
        for t in range(0, 10):
            whole.append(float(t * 10), "m", float(t))
        for t in range(0, 6):
            first.append(float(t * 10), "m", float(t))
        for t in range(6, 10):
            # The second chunk records locally from 0; merge realigns.
            second.append(float(t * 10 - 60), "m", float(t))
        first.merge(second, base_ns=60.0)
        assert first.series("m") == whole.series("m")

    def test_merge_rejects_other_types(self):
        with pytest.raises(ConfigError):
            TimeSeriesStore().merge({})


class TestSLOIntegration:
    def test_health_transitions_carry_fault_attribution(self):
        from repro.experiments.failover import run_failover
        failover = run_failover(seed=0, ops=6_000, capture=True)
        assert failover.fault_log is not None
        assert failover.fault_log.n > 0
        transitions = failover.result.health_transitions
        assert transitions
        # Transition context must carry the dominant hop and exemplars.
        hops = [ctx.get("dominant_hop") for _, _, ctx in transitions]
        assert any(h in HOPS for h in hops)
        tops = [ctx["top_faults"] for _, _, ctx in transitions
                if ctx.get("top_faults")]
        assert tops and all("total_ns" in f for f in tops[0])

    def test_capture_does_not_change_campaign_outcome(self):
        from repro.experiments.failover import run_failover
        plain = run_failover(seed=0, ops=6_000)
        traced = run_failover(seed=0, ops=6_000, capture=True)
        assert traced.fingerprint() == plain.fingerprint()
        assert traced.image_matches and plain.image_matches


class TestFaultChainExport:
    def test_trace_validates_with_flow_events(self):
        _, _, cap = run_with_capture(n=10_000)
        payload = fault_chain_trace(cap.log, top=8)
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"s", "f", "X"} <= phases
        for e in events:
            if e["ph"] in ("s", "t", "f"):
                assert "id" in e
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert tids <= {3, 4, 5} and len(tids) >= 2

    def test_chains_link_runtime_and_fabric_tracks(self):
        _, _, cap = run_with_capture(n=10_000)
        events = fault_chain_events(cap.log, top=4)
        by_id = {}
        for e in events:
            if e["ph"] in ("s", "t", "f"):
                by_id.setdefault(e["id"], []).append(e["ph"])
        # Every chain starts once and terminates once.
        for phases in by_id.values():
            assert phases.count("s") == 1 and phases.count("f") == 1

    def test_validator_rejects_flow_without_id(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "s", "ts": 0, "pid": 1, "tid": 1,
             "cat": "fault"}]}
        assert validate_chrome_trace(bad)


class TestFaultLogMergeBasics:
    def test_merge_window_size_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            FaultLog(window_size=256).merge(FaultLog(window_size=512))

    def test_merge_type_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            FaultLog().merge({})

    def test_merge_accumulates_exemplars_exactly(self):
        caps = [CausalCapture(top_k=4) for _ in range(2)]
        whole = CausalCapture(top_k=4)
        rng = np.random.default_rng(5)
        for seq in range(200):
            mem = float(rng.integers(100, 4000))
            part = caps[seq % 2]
            part.record(seq, seq * 64, None, 0, 0.0, 0.0, mem)
            whole.record(seq, seq * 64, None, 0, 0.0, 0.0, mem)
        merged = FaultLog(top_k=4)
        merged.merge(caps[0].log)
        merged.merge(caps[1].log)
        assert merged.exemplars == whole.log.exemplars
