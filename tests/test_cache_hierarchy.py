"""Tests for the cache hierarchy and AMAT pricing."""

import numpy as np
import pytest

import repro.common.units as u
from repro.cache.amat import (
    infiniswap_latencies,
    kona_latencies,
    kona_main_latencies,
    legoos_latencies,
    system_latencies,
)
from repro.cache.hierarchy import (
    CacheHierarchy,
    LevelSpec,
    dram_cache_spec,
)
from repro.common.errors import ConfigError


def small_hierarchy(dram_capacity=None):
    levels = (
        LevelSpec("L1", 4 * u.KB, 64, 2),
        LevelSpec("L2", 32 * u.KB, 64, 4),
    )
    dram = dram_cache_spec(dram_capacity) if dram_capacity else None
    return CacheHierarchy(levels, dram_cache=dram)


class TestAccessPath:
    def test_first_access_goes_remote(self):
        h = small_hierarchy(dram_capacity=1 * u.MB)
        assert h.access(0, False) == "remote"

    def test_second_access_hits_l1(self):
        h = small_hierarchy(dram_capacity=1 * u.MB)
        h.access(0, False)
        assert h.access(0, False) == "L1"

    def test_dram_cache_serves_spatial_locality(self):
        # Same 4 KB page, different line: misses L1/L2 but hits DRAM$.
        h = small_hierarchy(dram_capacity=1 * u.MB)
        h.access(0, False)
        assert h.access(2048, False) == "DRAM$"

    def test_without_dram_cache_misses_go_to_memory(self):
        h = small_hierarchy()
        assert h.access(0, False) == "memory"

    def test_dirty_dram_eviction_counts_remote_writeback(self):
        # One-set DRAM cache: 4 ways of 4 KB.
        levels = (LevelSpec("L1", 4 * u.KB, 64, 2),)
        h = CacheHierarchy(levels, dram_cache=LevelSpec(
            "DRAM$", 16 * u.KB, u.PAGE_4K, 4))
        for i in range(4):
            h.access(i * u.PAGE_4K, True)
        h.access(4 * u.PAGE_4K, False)    # evicts a dirty page
        assert h.remote_writebacks == 1


class TestSimulate:
    def test_counts_sum_to_accesses(self):
        h = small_hierarchy(dram_capacity=1 * u.MB)
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 4 * u.MB, 5000, dtype=np.uint64)
        writes = rng.random(5000) < 0.5
        result = h.simulate(addrs, writes)
        served = sum(result.level_hits.values()) + result.remote_fetches
        assert served == 5000

    def test_served_fractions_sum_to_one(self):
        h = small_hierarchy(dram_capacity=1 * u.MB)
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 2 * u.MB, 2000, dtype=np.uint64)
        result = h.simulate(addrs, np.zeros(2000, dtype=bool))
        assert sum(result.served_fractions().values()) == pytest.approx(1.0)

    def test_bigger_dram_cache_fewer_remote_fetches(self):
        rng = np.random.default_rng(2)
        addrs = rng.integers(0, 8 * u.MB, 20000, dtype=np.uint64)
        writes = np.zeros(20000, dtype=bool)
        small = small_hierarchy(dram_capacity=512 * u.KB)
        big = small_hierarchy(dram_capacity=4 * u.MB)
        r_small = small.simulate(addrs, writes)
        r_big = big.simulate(addrs.copy(), writes)
        assert r_big.remote_fetches < r_small.remote_fetches

    def test_shape_mismatch_rejected(self):
        h = small_hierarchy()
        with pytest.raises(ConfigError):
            h.simulate(np.zeros(3, dtype=np.uint64), np.zeros(2, dtype=bool))


class TestAmatPricing:
    def _result(self):
        h = small_hierarchy(dram_capacity=1 * u.MB)
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 4 * u.MB, 10000, dtype=np.uint64)
        return h.simulate(addrs, np.zeros(10000, dtype=bool))

    def test_system_ordering_matches_paper(self):
        # Same miss profile: Kona-main <= Kona < LegoOS < Infiniswap.
        result = self._result()
        amat = {name: system_latencies(name).amat_ns(result)
                for name in ("kona", "kona-main", "legoos", "infiniswap")}
        assert amat["kona-main"] <= amat["kona"]
        assert amat["kona"] < amat["legoos"] < amat["infiniswap"]

    def test_kona_main_avoids_numa_penalty(self):
        result = self._result()
        gap = (kona_latencies().amat_ns(result)
               - kona_main_latencies().amat_ns(result))
        assert gap > 0

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigError):
            system_latencies("windows-swap")

    def test_empty_trace_rejected(self):
        h = small_hierarchy(dram_capacity=1 * u.MB)
        result = h.result(0)
        with pytest.raises(ConfigError):
            kona_latencies().amat_ns(result)


class TestLevelSpecValidation:
    def test_upper_level_bigger_blocks_rejected(self):
        levels = (
            LevelSpec("L1", 8 * u.KB, 128, 2),
            LevelSpec("L2", 32 * u.KB, 64, 4),
        )
        with pytest.raises(ConfigError):
            CacheHierarchy(levels)

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ConfigError):
            CacheHierarchy(())

    def test_stats_of_unknown_level(self):
        h = small_hierarchy()
        with pytest.raises(ConfigError):
            h.stats_of("L9")


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            CacheHierarchy((LevelSpec("L1", 4 * u.KB, 64, 2),),
                           engine="turbo")

    def test_vectorized_rejects_random_policy(self):
        levels = (LevelSpec("L1", 4 * u.KB, 64, 2, policy="random"),)
        with pytest.raises(ConfigError):
            CacheHierarchy(levels, engine="vectorized")
        CacheHierarchy(levels, engine="scalar")  # oracle still supports it


class TestRemoteCountConsistency:
    """access() and simulate() must agree on remote accounting.

    With no DRAM cache, a whole-hierarchy miss fetches from (remote)
    memory; both paths count it as a remote fetch, so served fractions
    sum to 1 either way.
    """

    def test_memory_misses_count_as_remote_fetches_in_access(self):
        h = small_hierarchy()  # no DRAM cache
        assert h.access(0, False) == "memory"
        assert h.remote_fetches == 1
        assert h.access(0, False) == "L1"
        assert h.remote_fetches == 1

    def test_access_and_simulate_agree_without_dram(self):
        rng = np.random.default_rng(5)
        addrs = rng.integers(0, 1 * u.MB, 3000, dtype=np.uint64)
        writes = rng.random(3000) < 0.5
        via_access = small_hierarchy()
        for a, w in zip(addrs.tolist(), writes.tolist()):
            via_access.access(a, w)
        via_simulate = small_hierarchy()
        via_simulate.simulate(addrs, writes)
        assert via_access.result() == via_simulate.result()

    def test_served_fractions_sum_to_one_without_dram(self):
        h = small_hierarchy()
        rng = np.random.default_rng(6)
        addrs = rng.integers(0, 1 * u.MB, 2000, dtype=np.uint64)
        h.simulate(addrs, np.zeros(2000, dtype=bool))
        assert sum(h.result().served_fractions().values()) == pytest.approx(1.0)


class TestAccessCounter:
    def test_result_accumulates_across_calls(self):
        h = small_hierarchy(dram_capacity=1 * u.MB)
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 2 * u.MB, 1000, dtype=np.uint64)
        writes = np.zeros(1000, dtype=bool)
        h.simulate(addrs[:400], writes[:400])
        h.access(int(addrs[400]), False)
        result = h.simulate(addrs[401:], writes[401:])
        assert result.accesses == 1000
        served = sum(result.level_hits.values()) + result.remote_fetches
        assert served == 1000

    def test_explicit_accesses_override(self):
        h = small_hierarchy(dram_capacity=1 * u.MB)
        h.simulate(np.zeros(10, dtype=np.uint64), np.zeros(10, dtype=bool))
        assert h.result(accesses=20).accesses == 20
        assert h.result().accesses == 10
