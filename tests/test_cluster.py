"""Tests for slabs, memory nodes, and the rack controller."""

import pytest

import repro.common.units as u
from repro.common.errors import AllocationError, ConfigError, NodeFailure
from repro.cluster.controller import RackController
from repro.cluster.memnode import MemoryNode
from repro.cluster.slab import SlabPool
from repro.mem.address import AddressRange
from repro.net.fabric import Fabric
from repro.net.ring import LogRecord


def make_node(name="m0", capacity=64 * u.MB, slab=16 * u.MB, fabric=None):
    fabric = fabric or Fabric()
    return MemoryNode(name, capacity, fabric, slab_bytes=slab)


class TestSlabPool:
    def test_carves_whole_slabs(self):
        pool = SlabPool("n", AddressRange(0, 64 * u.MB), 16 * u.MB)
        assert pool.free_slabs == 4

    def test_allocate_release_roundtrip(self):
        pool = SlabPool("n", AddressRange(0, 64 * u.MB), 16 * u.MB)
        slab = pool.allocate()
        assert pool.free_slabs == 3
        assert slab.size == 16 * u.MB
        pool.release(slab)
        assert pool.free_slabs == 4

    def test_exhaustion(self):
        pool = SlabPool("n", AddressRange(0, 16 * u.MB), 16 * u.MB)
        pool.allocate()
        with pytest.raises(AllocationError):
            pool.allocate()

    def test_double_release_rejected(self):
        pool = SlabPool("n", AddressRange(0, 32 * u.MB), 16 * u.MB)
        slab = pool.allocate()
        pool.release(slab)
        with pytest.raises(AllocationError):
            pool.release(slab)

    def test_slabs_do_not_overlap(self):
        pool = SlabPool("n", AddressRange(0, 64 * u.MB), 16 * u.MB)
        slabs = [pool.allocate() for _ in range(4)]
        for i, a in enumerate(slabs):
            for b in slabs[i + 1:]:
                assert not a.remote_range.overlaps(b.remote_range)


class TestMemoryNode:
    def test_grant_and_reclaim(self):
        node = make_node()
        slab = node.grant_slab()
        assert slab.node == "m0"
        node.reclaim_slab(slab)
        assert node.pool.free_slabs == 4

    def test_failure_blocks_grants(self):
        node = make_node()
        node.fail()
        with pytest.raises(NodeFailure):
            node.grant_slab()
        node.recover()
        node.grant_slab()

    def test_log_receive_and_drain(self):
        node = make_node()
        node.receive_log([LogRecord(0), LogRecord(64)])
        receipt = node.drain_log(store_payloads=True)
        assert receipt.records == 2
        assert receipt.unpack_ns > 0
        assert receipt.ack_sent
        assert node.stored_line_count() == 2

    def test_drain_empty_log(self):
        node = make_node()
        receipt = node.drain_log()
        assert receipt.records == 0

    def test_failed_node_rejects_log(self):
        node = make_node()
        node.fail()
        with pytest.raises(NodeFailure):
            node.receive_log([LogRecord(0)])

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigError):
            MemoryNode("x", 100, Fabric())


class TestRackController:
    def _rack(self, nodes=2):
        fabric = Fabric()
        controller = RackController()
        for i in range(nodes):
            controller.register_node(make_node(f"m{i}", fabric=fabric))
        return controller

    def test_round_robin_spreads_allocation(self):
        controller = self._rack(2)
        slabs = controller.allocate_slabs(4)
        nodes = {s.node for s in slabs}
        assert nodes == {"m0", "m1"}

    def test_exclude_for_replicas(self):
        controller = self._rack(2)
        slabs = controller.allocate_slabs(2, exclude=["m0"])
        assert all(s.node == "m1" for s in slabs)

    def test_exclude_everything_rejected(self):
        controller = self._rack(1)
        with pytest.raises(AllocationError):
            controller.allocate_slabs(1, exclude=["m0"])

    def test_exhaustion_rolls_back(self):
        controller = self._rack(1)   # 4 slabs total
        with pytest.raises(AllocationError):
            controller.allocate_slabs(5)
        # The partial allocation was rolled back.
        assert controller.free_slab_count() == 4

    def test_skips_failed_nodes(self):
        controller = self._rack(2)
        controller.node("m0").fail()
        slabs = controller.allocate_slabs(2)
        assert all(s.node == "m1" for s in slabs)

    def test_release(self):
        controller = self._rack(2)
        slabs = controller.allocate_slabs(4)
        controller.release_slabs(slabs)
        assert controller.free_slab_count() == 8

    def test_remove_node(self):
        controller = self._rack(2)
        controller.remove_node("m0")
        assert controller.nodes == ["m1"]
        with pytest.raises(ConfigError):
            controller.node("m0")

    def test_duplicate_registration_rejected(self):
        fabric = Fabric()
        controller = RackController()
        node = make_node(fabric=fabric)
        controller.register_node(node)
        with pytest.raises(ConfigError):
            controller.register_node(node)

    def test_total_capacity_excludes_dead(self):
        controller = self._rack(2)
        total = controller.total_capacity()
        controller.node("m0").fail()
        assert controller.total_capacity() == total // 2
