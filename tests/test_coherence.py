"""Tests for the MESI directory and the coherent caching agent."""

import pytest

import repro.common.units as u
from repro.coherence.agent import CoherentCache
from repro.coherence.directory import Directory
from repro.coherence.states import CoherenceEvent, EventKind, LineState
from repro.common.errors import CoherenceError
from repro.mem.address import AddressRange


HOME = AddressRange(0, 1 * u.MB)


def make_directory(events=None):
    d = Directory(HOME)
    if events is not None:
        d.subscribe(events.append)
    return d


class TestDirectoryProtocol:
    def test_gets_fills_exclusive(self):
        events = []
        d = make_directory(events)
        d.get_shared(0, agent_id=1)
        assert d.state_of(0) is LineState.EXCLUSIVE
        assert events == [CoherenceEvent(EventKind.FILL, 0, False)]

    def test_second_sharer_degrades_to_shared(self):
        d = make_directory()
        d.get_shared(0, 1)
        d.get_shared(0, 2)
        assert d.state_of(0) is LineState.SHARED

    def test_getm_emits_write_fill(self):
        events = []
        d = make_directory(events)
        d.get_modified(0, 1)
        assert d.state_of(0) is LineState.MODIFIED
        assert events == [CoherenceEvent(EventKind.FILL, 0, True)]

    def test_upgrade_emits_upgrade_event(self):
        events = []
        d = make_directory(events)
        d.get_shared(0, 1)
        d.get_modified(0, 1)
        assert events[-1].kind is EventKind.UPGRADE

    def test_getm_invalidates_other_sharers(self):
        d = make_directory()
        invalidated = []
        d.register_agent(1, lambda a: invalidated.append((1, a)) or False)
        d.register_agent(2, lambda a: invalidated.append((2, a)) or False)
        d.get_shared(0, 1)
        d.get_shared(0, 2)
        d.get_modified(0, 1)
        assert (2, 0) in invalidated
        assert d.state_of(0) is LineState.MODIFIED

    def test_putm_emits_dirty_writeback(self):
        events = []
        d = make_directory(events)
        d.get_modified(0, 1)
        d.put_modified(0, 1)
        assert events[-1].kind is EventKind.DIRTY_WRITEBACK
        assert d.state_of(0) is LineState.INVALID

    def test_putm_from_silent_em_upgrade_accepted(self):
        # MESI: E->M upgrades are silent; the directory must take PutM
        # from the owner of an EXCLUSIVE entry.
        events = []
        d = make_directory(events)
        d.get_shared(0, 1)   # E at the directory
        d.put_modified(0, 1)
        assert events[-1].kind is EventKind.DIRTY_WRITEBACK

    def test_putm_from_non_owner_rejected(self):
        d = make_directory()
        d.get_modified(0, 1)
        with pytest.raises(CoherenceError):
            d.put_modified(0, 2)

    def test_put_clean_drops_sharer(self):
        d = make_directory()
        d.get_shared(0, 1)
        d.get_shared(0, 2)
        d.put_clean(0, 1)
        assert d.state_of(0) is LineState.SHARED
        d.put_clean(0, 2)
        assert d.state_of(0) is LineState.INVALID

    def test_unaligned_line_rejected(self):
        d = make_directory()
        with pytest.raises(CoherenceError):
            d.get_shared(13, 1)

    def test_foreign_address_rejected(self):
        d = make_directory()
        with pytest.raises(CoherenceError):
            d.get_shared(2 * u.MB, 1)


class TestSnoop:
    def test_snoop_pulls_dirty_line(self):
        events = []
        d = make_directory(events)
        dirty_copy = {0: True}
        d.register_agent(1, lambda a: dirty_copy.pop(a, False))
        d.get_modified(0, 1)
        assert d.snoop(0) is True
        assert events[-1].kind is EventKind.SNOOPED
        assert d.state_of(0) is LineState.INVALID

    def test_snoop_clean_exclusive_reports_false(self):
        d = make_directory()
        d.register_agent(1, lambda a: False)   # clean copy
        d.get_shared(0, 1)
        assert d.snoop(0) is False

    def test_snoop_untouched_line(self):
        d = make_directory()
        assert d.snoop(64) is False


class TestCoherentCache:
    def _pair(self, capacity=8 * u.KB):
        d = make_directory()
        cc = CoherentCache(0, lambda a: d if a in HOME else None,
                           capacity=capacity, ways=2)
        cc.attach(d)
        return d, cc

    def test_read_miss_then_hit(self):
        d, cc = self._pair()
        assert not cc.access(0, False)
        assert cc.access(0, False)
        assert cc.state_of(0) is LineState.EXCLUSIVE

    def test_silent_em_upgrade(self):
        d, cc = self._pair()
        cc.access(0, False)
        cc.access(0, True)    # E -> M, no directory traffic
        assert cc.state_of(0) is LineState.MODIFIED
        assert d.state_of(0) is LineState.EXCLUSIVE   # directory lags

    def test_dirty_eviction_reaches_directory(self):
        events = []
        d = make_directory(events)
        cc = CoherentCache(0, lambda a: d if a in HOME else None,
                           capacity=2 * 64, ways=2)  # one set
        cc.attach(d)
        cc.access(0, True)
        cc.access(64 * 64, False)   # same set (64 sets stride... force)
        # Fill the set beyond capacity with conflicting lines.
        cc.access(2 * 64 * 64, False)
        assert any(e.kind is EventKind.DIRTY_WRITEBACK for e in events)

    def test_untracked_addresses_have_no_directory_traffic(self):
        d, cc = self._pair()
        cc.access(2 * u.MB, True)   # outside HOME: CMem
        assert d.counters["get_m"] == 0

    def test_flush_tracked_writes_back_modified(self):
        events = []
        d = make_directory(events)
        cc = CoherentCache(0, lambda a: d if a in HOME else None,
                           capacity=8 * u.KB, ways=2)
        cc.attach(d)
        for i in range(8):
            cc.access(i * 64, True)
        written = cc.flush_tracked()
        assert written == 8
        assert cc.occupancy == 0
        assert sum(1 for e in events
                   if e.kind is EventKind.DIRTY_WRITEBACK) == 8

    def test_external_invalidation_clears_copy(self):
        d, cc = self._pair()
        cc.access(0, True)
        # A second agent grabs the line for writing.
        d.get_modified(0, agent_id=9)
        assert cc.state_of(0) is LineState.INVALID
