"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(["fig7", "--region-mb", "8"])
        assert args.region_mb == 8

    def test_chaos_campaign_default_and_choices(self):
        args = build_parser().parse_args(["chaos"])
        assert args.campaign == "node-failure"
        args = build_parser().parse_args(
            ["chaos", "--campaign", "memnode-failover",
             "--trace-out", "fo.json"])
        assert args.campaign == "memnode-failover"
        assert args.trace_out == "fo.json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--campaign", "bogus"])


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_fig11c_prints_breakdown(self, capsys):
        assert main(["fig11c"]) == 0
        out = capsys.readouterr().out
        assert "copy" in out and "bitmap" in out

    def test_fig10_prints_workloads(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "redis-rand" in out

    def test_fig11a_prints_strategies(self, capsys):
        assert main(["fig11a"]) == 0
        out = capsys.readouterr().out
        assert "kona-cl-log" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--windows", "3"]) == 0
        out = capsys.readouterr().out
        assert "voltdb-tpcc" in out
        assert "paper 4KB" in out

    def test_sweep_prints_tables(self, capsys):
        assert main(["sweep", "--ops", "2000", "--processes", "1"]) == 0
        out = capsys.readouterr().out
        assert "redis-rand" in out and "kona" in out

    def test_bench_quick_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--output", str(out_path),
                     "--history", "none"]) == 0
        out = capsys.readouterr().out
        assert "uniform-stress" in out and "speedup" in out
        assert out_path.exists()

    def test_bench_gate_failure_exits_nonzero(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        with pytest.raises(SystemExit):
            main(["bench", "--quick", "--output", str(out_path),
                  "--history", "none", "--min-speedup", "1000"])

    def test_bench_history_appended(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        history = tmp_path / "history.jsonl"
        assert main(["bench", "--quick", "--output", str(out_path),
                     "--history", str(history)]) == 0
        import json
        records = [json.loads(line)
                   for line in history.read_text().splitlines()]
        assert len(records) == 1
        assert records[0]["benchmark"] == "kcachesim-engine-bench"
        assert records[0]["cases"][0]["speedup"] > 0

    def test_profile_prints_self_time(self, capsys):
        assert main(["profile", "--trace-ops", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Critical path" in out
        assert "self-time coverage: 1.0000" in out
        assert "rdma" in out

    def test_perfdiff_identical_seeds_clean(self, capsys):
        assert main(["perfdiff", "--trace-ops", "2000"]) == 0
        out = capsys.readouterr().out
        assert "0 significant" in out
        assert "clean" in out

    def test_perfdiff_artifacts_and_report(self, capsys, tmp_path):
        import json

        from repro.obs import save_artifact

        a = {"format": "repro-run-artifact", "version": 1,
             "metrics": {"x": 1.0}, "histograms": {}, "meta": {}}
        b = {"format": "repro-run-artifact", "version": 1,
             "metrics": {"x": 5.0}, "histograms": {}, "meta": {}}
        save_artifact(a, str(tmp_path / "a.json"))
        save_artifact(b, str(tmp_path / "b.json"))
        report = tmp_path / "diff.json"
        with pytest.raises(SystemExit):
            main(["perfdiff", "--run-a", str(tmp_path / "a.json"),
                  "--run-b", str(tmp_path / "b.json"),
                  "--report", str(report)])
        out = capsys.readouterr().out
        assert "NOT clean" in out
        payload = json.loads(report.read_text())
        assert payload["clean"] is False
        assert payload["significant"][0]["name"] == "x"

    def test_perfdiff_bench_gate_from_history(self, capsys, tmp_path):
        import json

        baseline = {"benchmark": "demo-bench",
                    "cases": [{"workload": "hot", "speedup": 6.0}]}
        base_path = tmp_path / "BENCH_demo.json"
        base_path.write_text(json.dumps(baseline))
        history = tmp_path / "history.jsonl"
        history.write_text(json.dumps(
            {"benchmark": "demo-bench",
             "cases": [{"workload": "hot", "speedup": 5.0}]}) + "\n")
        assert main(["perfdiff", "--against", str(base_path),
                     "--history", str(history)]) == 0
        assert "perf gate passed" in capsys.readouterr().out
        history.write_text(json.dumps(
            {"benchmark": "demo-bench",
             "cases": [{"workload": "hot", "speedup": 1.0}]}) + "\n")
        with pytest.raises(SystemExit):
            main(["perfdiff", "--against", str(base_path),
                  "--history", str(history)])
        assert "REGRESSED" in capsys.readouterr().out

    def test_slo_prints_alerts_and_verdicts(self, capsys):
        assert main(["slo", "--trace-ops", "4000"]) == 0
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "burn" in out
        assert "SLO compliance" in out
        assert "DEGRADED transition explained by" in out

    def test_chaos_exits_nonzero_on_invariant_violation(self, capsys,
                                                        monkeypatch):
        from repro.chaos import CampaignResult, InvariantCheck
        from repro.kona.telemetry import TelemetrySnapshot

        result = CampaignResult(
            seed=0, accesses=1, faulted_accesses=0, timeline=[],
            window_amat_ns=[], pre_fault_amat_ns=1.0,
            post_recovery_amat_ns=1.0)
        result.invariants = [InvariantCheck(
            name="writeback_conservation", passed=False, detail="boom")]
        result.telemetry = TelemetrySnapshot(data={"health": {}})
        monkeypatch.setattr("repro.cli.run_chaos", lambda **kw: result)
        with pytest.raises(SystemExit) as exc:
            main(["chaos"])
        assert exc.value.code == 1
        assert "VIOLATED" in capsys.readouterr().out

    @staticmethod
    def _fake_failover(passed: bool):
        from repro.chaos import CampaignResult, InvariantCheck
        from repro.experiments.failover import FailoverResult
        from repro.kona.telemetry import TelemetrySnapshot

        result = CampaignResult(
            seed=0, accesses=1, faulted_accesses=0, timeline=[],
            window_amat_ns=[], pre_fault_amat_ns=1.0,
            post_recovery_amat_ns=1.0)
        result.invariants = [InvariantCheck(
            name="durability_image_match", passed=passed, detail="image")]
        result.telemetry = TelemetrySnapshot(data={})
        return FailoverResult(
            result=result, image_lines=1, oracle_lines=1,
            image_matches=passed, image_digest="cafe", mttr_ns=0.0,
            failovers=1, promotions=1, scrub_repairs=0)

    def test_failover_campaign_exits_nonzero_on_violation(
            self, capsys, monkeypatch):
        fake = self._fake_failover(passed=False)
        monkeypatch.setattr("repro.cli.run_failover", lambda **kw: fake)
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "--campaign", "memnode-failover"])
        assert exc.value.code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_failover_campaign_exits_zero_when_proof_holds(
            self, capsys, monkeypatch):
        fake = self._fake_failover(passed=True)
        monkeypatch.setattr("repro.cli.run_failover", lambda **kw: fake)
        assert main(["chaos", "--campaign", "memnode-failover"]) == 0
        out = capsys.readouterr().out
        assert "Durability proof" in out
        assert "bit-identical" in out

    def test_trace_gen_replay_round_trip(self, capsys, tmp_path):
        import json

        trace = tmp_path / "hot.trace"
        assert main(["trace-gen", "--out", str(trace),
                     "--accesses", "20000", "--hot-lines", "2048",
                     "--region-mb", "8", "--chunk", "8192"]) == 0
        out = capsys.readouterr().out
        assert "columnar trace" in out and "20,000 accesses" in out
        assert main(["trace-replay", "--input", str(trace),
                     "--chunk", "8192", "--fmem-mb", "4",
                     "--vfmem-mb", "32",
                     "--rss-ceiling-mb", "4096"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["accesses"] == 20000
        assert summary["cache_hits"] + summary["cache_misses"] == 20000
        assert summary["elapsed_model_ns"] > 0
        assert summary["peak_rss_mb"] > 0

    def test_trace_replay_sharded_matches_totals(self, capsys, tmp_path):
        import json

        trace = tmp_path / "hot.trace"
        main(["trace-gen", "--out", str(trace), "--accesses", "20000",
              "--hot-lines", "2048", "--region-mb", "8",
              "--chunk", "8192"])
        capsys.readouterr()
        assert main(["trace-replay", "--input", str(trace),
                     "--chunk", "8192", "--fmem-mb", "4",
                     "--vfmem-mb", "32", "--shards", "2",
                     "--processes", "1"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert sum(summary["per_shard_accesses"]) == 20000

    def test_trace_replay_rss_ceiling_enforced(self, capsys, tmp_path):
        trace = tmp_path / "hot.trace"
        main(["trace-gen", "--out", str(trace), "--accesses", "8192",
              "--hot-lines", "512", "--region-mb", "4",
              "--chunk", "4096"])
        capsys.readouterr()
        with pytest.raises(SystemExit) as exc:
            main(["trace-replay", "--input", str(trace),
                  "--chunk", "4096", "--fmem-mb", "4",
                  "--vfmem-mb", "32", "--rss-ceiling-mb", "1"])
        assert exc.value.code == 1

    def test_trace_replay_rejects_misaligned_chunk(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace-replay", "--input", str(tmp_path),
                  "--chunk", "300"])

    def test_trace_convert_round_trip(self, capsys, tmp_path):
        import numpy as np

        from repro.common import units
        from repro.workloads.trace import load_trace, make_trace, save_trace

        npz_a = tmp_path / "a.npz"
        columnar = tmp_path / "b.trace"
        npz_b = tmp_path / "c.npz"
        rng = np.random.default_rng(3)
        n = 5000
        trace = make_trace(
            (rng.integers(0, 1 << 16, n).astype(np.uint64)
             * np.uint64(units.CACHE_LINE)),
            np.full(n, units.WORD, np.uint32),
            rng.random(n) < 0.3,
            rng.integers(0, 4, n).astype(np.uint32),
            memory_bytes=16 * units.MB, name="rand")
        save_trace(trace, npz_a)
        assert main(["trace-convert", "--input", str(npz_a),
                     "--out", str(columnar), "--to", "columnar"]) == 0
        assert "columnar trace" in capsys.readouterr().out
        assert main(["trace-convert", "--input", str(columnar),
                     "--out", str(npz_b), "--to", "npz"]) == 0
        assert "npz trace" in capsys.readouterr().out
        again = load_trace(npz_b)
        assert np.array_equal(again.data, trace.data)
        assert again.memory_bytes == trace.memory_bytes

    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        assert main(["trace", "--trace-ops", "2000",
                     "--out", str(trace), "--prom", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "chrome trace" in out and "MTTR" in out
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert "fetch.fill" in names and "evict.page" in names
        assert prom.read_text().startswith("# ")
