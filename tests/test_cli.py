"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(["fig7", "--region-mb", "8"])
        assert args.region_mb == 8


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_fig11c_prints_breakdown(self, capsys):
        assert main(["fig11c"]) == 0
        out = capsys.readouterr().out
        assert "copy" in out and "bitmap" in out

    def test_fig10_prints_workloads(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "redis-rand" in out

    def test_fig11a_prints_strategies(self, capsys):
        assert main(["fig11a"]) == 0
        out = capsys.readouterr().out
        assert "kona-cl-log" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--windows", "3"]) == 0
        out = capsys.readouterr().out
        assert "voltdb-tpcc" in out
        assert "paper 4KB" in out

    def test_sweep_prints_tables(self, capsys):
        assert main(["sweep", "--ops", "2000", "--processes", "1"]) == 0
        out = capsys.readouterr().out
        assert "redis-rand" in out and "kona" in out

    def test_bench_quick_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "uniform-stress" in out and "speedup" in out
        assert out_path.exists()

    def test_bench_gate_failure_exits_nonzero(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        with pytest.raises(SystemExit):
            main(["bench", "--quick", "--output", str(out_path),
                  "--min-speedup", "1000"])

    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        assert main(["trace", "--trace-ops", "2000",
                     "--out", str(trace), "--prom", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "chrome trace" in out and "MTTR" in out
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert "fetch.fill" in names and "evict.page" in names
        assert prom.read_text().startswith("# ")
