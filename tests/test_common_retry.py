"""Tests for the seeded retry/backoff executor."""

import numpy as np
import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError, NetworkError, RetryExhausted
from repro.common.retry import Retrier, RetryPolicy


def _flaky_fn(failures: int):
    """A callable that raises NetworkError ``failures`` times, then works."""
    state = {"left": failures}

    def fn():
        if state["left"] > 0:
            state["left"] -= 1
            raise NetworkError("transient")
        return "ok"

    return fn


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_backoff_ns=1000, multiplier=2.0,
                             max_backoff_ns=1e9, jitter=0.0)
        rng = np.random.default_rng(0)
        waits = [policy.backoff_ns(k, rng) for k in range(4)]
        assert waits == [1000, 2000, 4000, 8000]

    def test_backoff_caps(self):
        policy = RetryPolicy(base_backoff_ns=1000, multiplier=10.0,
                             max_backoff_ns=5000, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff_ns(3, rng) == 5000

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_backoff_ns=1000, jitter=0.2)
        rng = np.random.default_rng(7)
        for k in range(8):
            wait = policy.backoff_ns(k % 3, rng)
            base = min(1000 * policy.multiplier ** (k % 3),
                       policy.max_backoff_ns)
            assert 0.8 * base <= wait <= 1.2 * base

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_backoff_ns": -1},
        {"multiplier": 0.5},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


class TestRetrier:
    def test_success_first_try_charges_nothing(self):
        clock = SimClock()
        retrier = Retrier(RetryPolicy(), seed=1, clock=clock)
        assert retrier.call(lambda: 42) == 42
        assert clock.now == 0.0
        assert retrier.last_outcome.attempts == 1
        assert retrier.last_outcome.backoff_ns == 0.0

    def test_recovers_after_transient_failures(self):
        clock = SimClock()
        retrier = Retrier(RetryPolicy(max_attempts=4), seed=1, clock=clock)
        assert retrier.call(_flaky_fn(2)) == "ok"
        assert retrier.last_outcome.attempts == 3
        assert retrier.counters["retries"] == 2
        assert retrier.counters["recovered_calls"] == 1

    def test_backoff_charged_to_simulated_clock(self):
        clock = SimClock()
        retrier = Retrier(RetryPolicy(max_attempts=4), seed=1, clock=clock)
        retrier.call(_flaky_fn(2))
        # Clock advanced by exactly the reported backoff, nothing else.
        assert clock.now == pytest.approx(retrier.last_outcome.backoff_ns)
        assert clock.now > 0.0

    def test_exhaustion_raises_and_counts(self):
        retrier = Retrier(RetryPolicy(max_attempts=3), seed=1,
                          clock=SimClock())
        with pytest.raises(RetryExhausted):
            retrier.call(_flaky_fn(99))
        assert retrier.counters["exhausted"] == 1
        assert retrier.counters["failed_attempts"] == 3
        assert retrier.last_outcome.attempts == 3

    def test_exhausted_is_a_network_error(self):
        # Callers that catch NetworkError must also see RetryExhausted.
        assert issubclass(RetryExhausted, NetworkError)

    def test_non_network_errors_propagate(self):
        retrier = Retrier(RetryPolicy(), seed=1, clock=SimClock())

        def broken():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retrier.call(broken)
        assert retrier.counters["retries"] == 0


class TestDeadlineBudget:
    """The total-deadline budget bounds cumulative backoff per call."""

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_total_backoff_ns=-1.0)

    def test_zero_budget_means_unbounded(self):
        clock = SimClock()
        policy = RetryPolicy(max_attempts=4, base_backoff_ns=1000,
                             multiplier=2.0, jitter=0.0,
                             max_total_backoff_ns=0.0)
        retrier = Retrier(policy, seed=1, clock=clock)
        retrier.call(_flaky_fn(3))
        assert clock.now == 1000 + 2000 + 4000
        assert retrier.counters["deadline_clamps"] == 0

    def test_final_wait_clamped_to_remaining_budget(self):
        clock = SimClock()
        policy = RetryPolicy(max_attempts=5, base_backoff_ns=1000,
                             multiplier=2.0, jitter=0.0,
                             max_total_backoff_ns=2500)
        retrier = Retrier(policy, seed=1, clock=clock)
        assert retrier.call(_flaky_fn(2)) == "ok"
        # Waits 1000, then 2000 clamped to the remaining 1500.
        assert clock.now == 2500
        assert retrier.counters["deadline_clamps"] == 1
        assert retrier.last_outcome.backoff_ns == 2500

    def test_spent_budget_stops_retrying_early(self):
        clock = SimClock()
        policy = RetryPolicy(max_attempts=6, base_backoff_ns=1000,
                             multiplier=2.0, jitter=0.0,
                             max_total_backoff_ns=1500)
        retrier = Retrier(policy, seed=1, clock=clock)
        with pytest.raises(RetryExhausted):
            retrier.call(_flaky_fn(99))
        # 1000, then 500 (clamp), then the budget is gone: give up
        # after 3 of the 6 scheduled attempts.
        assert retrier.counters["deadline_exceeded"] == 1
        assert retrier.last_outcome.attempts == 3
        assert retrier.last_outcome.backoff_ns == 1500
        assert clock.now == 1500

    def test_deadline_never_exceeded_with_jitter(self):
        budget = 10_000.0
        policy = RetryPolicy(max_attempts=8, base_backoff_ns=3000,
                             multiplier=2.0, jitter=0.2,
                             max_total_backoff_ns=budget)
        for seed in range(10):
            clock = SimClock()
            retrier = Retrier(policy, seed=seed, clock=clock)
            with pytest.raises(RetryExhausted):
                retrier.call(_flaky_fn(99))
            assert clock.now <= budget + 1e-9


class TestDeterminism:
    """Acceptance: same seed -> identical backoff and clock charge."""

    @staticmethod
    def _run(seed: int):
        clock = SimClock()
        retrier = Retrier(RetryPolicy(max_attempts=5), seed=seed,
                          clock=clock)
        charges = []
        for failures in (1, 3, 2, 0, 4):
            before = clock.now
            retrier.call(_flaky_fn(failures))
            charges.append(clock.now - before)
        return charges, clock.now

    def test_same_seed_identical_runs(self):
        assert self._run(11) == self._run(11)

    def test_different_seeds_differ(self):
        charges_a, _ = self._run(11)
        charges_b, _ = self._run(12)
        assert charges_a != charges_b
