"""Tests for the seeded retry/backoff executor."""

import numpy as np
import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError, NetworkError, RetryExhausted
from repro.common.retry import Retrier, RetryPolicy


def _flaky_fn(failures: int):
    """A callable that raises NetworkError ``failures`` times, then works."""
    state = {"left": failures}

    def fn():
        if state["left"] > 0:
            state["left"] -= 1
            raise NetworkError("transient")
        return "ok"

    return fn


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_backoff_ns=1000, multiplier=2.0,
                             max_backoff_ns=1e9, jitter=0.0)
        rng = np.random.default_rng(0)
        waits = [policy.backoff_ns(k, rng) for k in range(4)]
        assert waits == [1000, 2000, 4000, 8000]

    def test_backoff_caps(self):
        policy = RetryPolicy(base_backoff_ns=1000, multiplier=10.0,
                             max_backoff_ns=5000, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff_ns(3, rng) == 5000

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_backoff_ns=1000, jitter=0.2)
        rng = np.random.default_rng(7)
        for k in range(8):
            wait = policy.backoff_ns(k % 3, rng)
            base = min(1000 * policy.multiplier ** (k % 3),
                       policy.max_backoff_ns)
            assert 0.8 * base <= wait <= 1.2 * base

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_backoff_ns": -1},
        {"multiplier": 0.5},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


class TestRetrier:
    def test_success_first_try_charges_nothing(self):
        clock = SimClock()
        retrier = Retrier(RetryPolicy(), seed=1, clock=clock)
        assert retrier.call(lambda: 42) == 42
        assert clock.now == 0.0
        assert retrier.last_outcome.attempts == 1
        assert retrier.last_outcome.backoff_ns == 0.0

    def test_recovers_after_transient_failures(self):
        clock = SimClock()
        retrier = Retrier(RetryPolicy(max_attempts=4), seed=1, clock=clock)
        assert retrier.call(_flaky_fn(2)) == "ok"
        assert retrier.last_outcome.attempts == 3
        assert retrier.counters["retries"] == 2
        assert retrier.counters["recovered_calls"] == 1

    def test_backoff_charged_to_simulated_clock(self):
        clock = SimClock()
        retrier = Retrier(RetryPolicy(max_attempts=4), seed=1, clock=clock)
        retrier.call(_flaky_fn(2))
        # Clock advanced by exactly the reported backoff, nothing else.
        assert clock.now == pytest.approx(retrier.last_outcome.backoff_ns)
        assert clock.now > 0.0

    def test_exhaustion_raises_and_counts(self):
        retrier = Retrier(RetryPolicy(max_attempts=3), seed=1,
                          clock=SimClock())
        with pytest.raises(RetryExhausted):
            retrier.call(_flaky_fn(99))
        assert retrier.counters["exhausted"] == 1
        assert retrier.counters["failed_attempts"] == 3
        assert retrier.last_outcome.attempts == 3

    def test_exhausted_is_a_network_error(self):
        # Callers that catch NetworkError must also see RetryExhausted.
        assert issubclass(RetryExhausted, NetworkError)

    def test_non_network_errors_propagate(self):
        retrier = Retrier(RetryPolicy(), seed=1, clock=SimClock())

        def broken():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retrier.call(broken)
        assert retrier.counters["retries"] == 0


class TestDeterminism:
    """Acceptance: same seed -> identical backoff and clock charge."""

    @staticmethod
    def _run(seed: int):
        clock = SimClock()
        retrier = Retrier(RetryPolicy(max_attempts=5), seed=seed,
                          clock=clock)
        charges = []
        for failures in (1, 3, 2, 0, 4):
            before = clock.now
            retrier.call(_flaky_fn(failures))
            charges.append(clock.now - before)
        return charges, clock.now

    def test_same_seed_identical_runs(self):
        assert self._run(11) == self._run(11)

    def test_different_seeds_differ(self):
        charges_a, _ = self._run(11)
        charges_b, _ = self._run(12)
        assert charges_a != charges_b
