"""Streamed replay: chunked ``run_trace_stream`` vs monolithic oracle.

The contract under test: feeding a trace through ``run_trace_stream``
in chunks (each a multiple of the 256-access maintenance cadence,
except possibly the last) leaves the runtime in a state — every
counter, the dirty bitmap, the time accounting, and the bit-exact
``elapsed_ns`` — identical to one monolithic ``run_trace`` over the
concatenated trace.  Because float addition is not associative, this
only holds if the engine threads ONE stall-accumulation chain through
all chunks in program order; these tests pin that ordering contract.
"""

import numpy as np
import pytest

from repro.common import units
from repro.common.errors import ConfigError
from repro.experiments.bench import runtime_fingerprint
from repro.kona.config import KonaConfig
from repro.kona.runtime import KonaRuntime


def _trace(n=20_000, seed=0, lines=1 << 14, region=8 * units.MB):
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, lines, n).astype(np.int64)
             * units.CACHE_LINE) % region
    return addrs, rng.random(n) < 0.3


def _runtime(region=8 * units.MB):
    cfg = KonaConfig(fmem_capacity=4 * units.MB,
                     vfmem_capacity=32 * units.MB,
                     slab_bytes=16 * units.MB)
    rt = KonaRuntime(cfg)
    return rt, rt.mmap(region)


def _chunks(addrs, writes, sizes):
    pos = 0
    for size in sizes:
        yield addrs[pos:pos + size], writes[pos:pos + size]
        pos += size
    assert pos == addrs.size


class TestStreamEqualsMonolithic:
    @pytest.mark.parametrize("engine", ["batched", "scalar"])
    def test_fixed_chunks(self, engine):
        addrs, writes = _trace()
        rt_m, region_m = _runtime()
        report_m = rt_m.run_trace(addrs + region_m.start, writes,
                                  engine=engine)
        rt_s, region_s = _runtime()
        sizes = [4096] * 4 + [addrs.size - 4 * 4096]
        report_s = rt_s.run_trace_stream(
            _chunks(addrs, writes, sizes), engine=engine,
            base=region_s.start)
        assert runtime_fingerprint(rt_s, report_s) \
            == runtime_fingerprint(rt_m, report_m)

    def test_base_rebase_equals_prebased(self):
        # Per-chunk base rebasing (no shifted copy of the trace) must
        # behave exactly like adding the offset up front.
        addrs, writes = _trace(8192, seed=4)
        rt_a, region_a = _runtime()
        report_a = rt_a.run_trace(addrs + region_a.start, writes)
        rt_b, region_b = _runtime()
        report_b = rt_b.run_trace(addrs, writes, base=region_b.start)
        assert runtime_fingerprint(rt_a, report_a) \
            == runtime_fingerprint(rt_b, report_b)

    def test_ragged_final_chunk_allowed(self):
        addrs, writes = _trace(10_000, seed=1)
        rt_m, region_m = _runtime()
        report_m = rt_m.run_trace(addrs + region_m.start, writes)
        rt_s, region_s = _runtime()
        report_s = rt_s.run_trace_stream(
            _chunks(addrs, writes, [7936, 1792, 272]),
            base=region_s.start)
        assert runtime_fingerprint(rt_s, report_s) \
            == runtime_fingerprint(rt_m, report_m)

    def test_empty_chunks_skipped(self):
        addrs, writes = _trace(2048, seed=2)
        rt_m, region_m = _runtime()
        report_m = rt_m.run_trace(addrs + region_m.start, writes)
        rt_s, region_s = _runtime()
        sizes = [0, 1024, 0, 1024, 0]
        report_s = rt_s.run_trace_stream(
            _chunks(addrs, writes, sizes), base=region_s.start)
        assert runtime_fingerprint(rt_s, report_s) \
            == runtime_fingerprint(rt_m, report_m)


class TestStallSummationOrderingProperty:
    """Property test: ANY cadence-aligned chunking is bit-exact.

    ``elapsed_ns`` is a float sum of per-miss stalls; float addition
    does not commute with regrouping, so bit-equality across arbitrary
    chunkings proves the stream threads one summation chain in program
    order rather than summing per chunk and combining.
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_random_cadence_aligned_chunkings(self, seed):
        addrs, writes = _trace(12_800, seed=seed, lines=1 << 15)
        rt_m, region_m = _runtime()
        report_m = rt_m.run_trace(addrs + region_m.start, writes)
        oracle = runtime_fingerprint(rt_m, report_m)
        rng = np.random.default_rng(seed + 100)
        for _ in range(3):
            sizes = []
            left = addrs.size
            while left > 0:
                size = min(int(rng.integers(1, 20)) * 256, left)
                sizes.append(size)
                left -= size
            rt_s, region_s = _runtime()
            report_s = rt_s.run_trace_stream(
                _chunks(addrs, writes, sizes), base=region_s.start)
            got = runtime_fingerprint(rt_s, report_s)
            assert got == oracle, f"chunking {sizes[:8]}... diverged"
            assert got["elapsed_ns"] == oracle["elapsed_ns"]

    def test_misaligned_middle_chunk_rejected(self):
        addrs, writes = _trace(2048, seed=3)
        rt, region = _runtime()
        with pytest.raises(ConfigError):
            rt.run_trace_stream(
                _chunks(addrs, writes, [300, 1748]), base=region.start)

    def test_shape_mismatch_rejected(self):
        rt, region = _runtime()
        bad = iter([(np.zeros(4, np.int64), np.zeros(3, bool))])
        with pytest.raises(ConfigError):
            rt.run_trace_stream(bad, base=region.start)

    def test_unknown_engine_rejected(self):
        rt, _ = _runtime()
        with pytest.raises(ConfigError):
            rt.run_trace_stream(iter([]), engine="warp")
